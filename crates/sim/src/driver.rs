//! Deterministic transaction driver over any of the systems.
//!
//! The driver round-robins operations of concurrent transactions
//! across clients, retries blocked operations as other transactions
//! advance, feeds a waits-for graph for deadlock detection (aborting
//! the victim and re-queueing its transaction), and maintains the
//! committed-state [`Oracle`] for end-of-run verification.

use crate::oracle::Oracle;
use crate::workload::{Op, TxnSpec};
use cblog_common::{Error, NodeId, PageId, Result, SimTime, TxnId};
use cblog_locks::WaitsForGraph;
use cblog_net::{FaultStats, NetStats, Network};
use std::collections::{HashMap, VecDeque};

/// Uniform facade over the client-based-logging cluster and the
/// server-logging baseline.
pub trait System {
    /// Starts a transaction at `node`.
    fn begin(&mut self, node: NodeId) -> Result<TxnId>;
    /// Reads a counter slot.
    fn read(&mut self, txn: TxnId, pid: PageId, slot: usize) -> Result<u64>;
    /// Writes a counter slot.
    fn write(&mut self, txn: TxnId, pid: PageId, slot: usize, value: u64) -> Result<()>;
    /// Commits.
    fn commit(&mut self, txn: TxnId) -> Result<()>;
    /// Aborts (rolls back).
    fn abort(&mut self, txn: TxnId) -> Result<()>;
    /// The accounted network.
    fn network(&self) -> &Network;
    /// Submits a commit to the system's async commit pipeline: the
    /// transaction's commit record is written and its locks release,
    /// but durability is acknowledged via [`System::poll_committed`].
    /// Systems without a pipeline commit synchronously here.
    fn commit_submit(&mut self, txn: TxnId) -> Result<()> {
        self.commit(txn)
    }
    /// True once a submitted commit is durable. Synchronous systems
    /// are always done.
    fn poll_committed(&mut self, txn: TxnId) -> Result<bool> {
        let _ = txn;
        Ok(true)
    }
    /// Drives the commit pipeline when nothing else can make progress
    /// (e.g. advances the sim-clock to the next group-commit window
    /// deadline). Returns true if any commit was acknowledged.
    fn pump_commits(&mut self) -> Result<bool> {
        Ok(false)
    }
    /// Reports a driver-level lock-queueing delay: `txn` spent `us`
    /// sim-µs being retried before its blocked operation succeeded (or
    /// it was aborted). Systems that already fold retry spans into
    /// their own `locks/wait_us` histogram ignore this; the baselines
    /// record it so all systems report one uniform wait metric.
    fn note_queue_wait(&mut self, txn: TxnId, us: SimTime) {
        let _ = (txn, us);
    }
    /// Feeds the system's interval telemetry sampler, if it has one:
    /// the driver calls this after every scheduling sweep so time
    /// series resolution follows the sim-clock rather than workload
    /// phase boundaries. Systems without telemetry do nothing.
    fn sample_telemetry(&mut self) {}
    /// Post-mortem flight-recorder dump, if the system keeps one.
    /// Printed by the oracle when verification finds a divergence.
    fn flight_dump(&self) -> Option<String> {
        None
    }
    /// Runs the system's online invariant watchdog over every span it
    /// traced, failing with the offending lineage slice. Untraced
    /// systems (and traced runs with no violations) return `Ok(())`;
    /// the driver calls this once at the end of every workload run.
    fn trace_check(&self) -> Result<()> {
        Ok(())
    }
}

/// Implements the shared half of [`System`] (begin / read / write /
/// commit / abort / network) for a cluster type by delegating to its
/// inherent methods, then splices in any system-specific overrides
/// passed as extra items. Keeps the delegation — including the
/// fault-aware retry semantics the driver builds on top of it —
/// written exactly once for all three systems.
macro_rules! impl_system {
    ($ty:ty $(, $extra:item)* $(,)?) => {
        impl System for $ty {
            fn begin(&mut self, node: NodeId) -> Result<TxnId> {
                <$ty>::begin(self, node)
            }

            fn read(&mut self, txn: TxnId, pid: PageId, slot: usize) -> Result<u64> {
                self.read_u64(txn, pid, slot)
            }

            fn write(&mut self, txn: TxnId, pid: PageId, slot: usize, value: u64) -> Result<()> {
                self.write_u64(txn, pid, slot, value)
            }

            fn commit(&mut self, txn: TxnId) -> Result<()> {
                <$ty>::commit(self, txn)
            }

            fn abort(&mut self, txn: TxnId) -> Result<()> {
                <$ty>::abort(self, txn)
            }

            fn network(&self) -> &Network {
                <$ty>::network(self)
            }

            $($extra)*
        }
    };
}

// note_queue_wait stays the default no-op for the cluster — it folds
// driver retry spans into locks/wait_us via its own wait tracking.
impl_system!(
    cblog_core::Cluster,
    fn commit_submit(&mut self, txn: TxnId) -> Result<()> {
        cblog_core::Cluster::commit_submit(self, txn)
    },
    fn poll_committed(&mut self, txn: TxnId) -> Result<bool> {
        cblog_core::Cluster::poll_committed(self, txn)
    },
    fn pump_commits(&mut self) -> Result<bool> {
        cblog_core::Cluster::pump_commits(self)
    },
    fn sample_telemetry(&mut self) {
        cblog_core::Cluster::sample_telemetry(self)
    },
    fn flight_dump(&self) -> Option<String> {
        Some(cblog_core::Cluster::flight_dump(self))
    },
    fn trace_check(&self) -> Result<()> {
        cblog_core::Cluster::trace_check(self)
    },
);

impl_system!(
    cblog_baselines::ServerCluster,
    fn commit_submit(&mut self, txn: TxnId) -> Result<()> {
        cblog_baselines::ServerCluster::commit_submit(self, txn)
    },
    fn poll_committed(&mut self, txn: TxnId) -> Result<bool> {
        cblog_baselines::ServerCluster::poll_committed(self, txn)
    },
    fn pump_commits(&mut self) -> Result<bool> {
        cblog_baselines::ServerCluster::pump_commits(self)
    },
    fn note_queue_wait(&mut self, txn: TxnId, us: SimTime) {
        cblog_baselines::ServerCluster::note_queue_wait(self, txn, us);
    },
);

impl_system!(
    cblog_baselines::PcaCluster,
    fn commit_submit(&mut self, txn: TxnId) -> Result<()> {
        cblog_baselines::PcaCluster::commit_submit(self, txn)
    },
    fn poll_committed(&mut self, txn: TxnId) -> Result<bool> {
        cblog_baselines::PcaCluster::poll_committed(self, txn)
    },
    fn pump_commits(&mut self) -> Result<bool> {
        cblog_baselines::PcaCluster::pump_commits(self)
    },
    fn note_queue_wait(&mut self, txn: TxnId, us: SimTime) {
        cblog_baselines::PcaCluster::note_queue_wait(self, txn, us);
    },
);

/// Outcome of a full workload run.
#[derive(Debug)]
pub struct RunStats {
    /// Committed transactions.
    pub committed: u64,
    /// User-initiated aborts (per the workload spec).
    pub user_aborts: u64,
    /// Deadlock-victim aborts (those transactions were re-run).
    pub deadlock_aborts: u64,
    /// Operations executed (including re-runs).
    pub ops_executed: u64,
    /// Network statistics at the end of the run.
    pub net: NetStats,
    /// Injected-fault counters (drops, delays, duplicates, reorders,
    /// reliable-send retries) at the end of the run. All zero when the
    /// fault plan is a no-op.
    pub faults: FaultStats,
    /// Simulated elapsed time, µs.
    pub sim_time: SimTime,
    /// Busy time of the bottleneck node, µs.
    pub max_busy: SimTime,
    /// The bottleneck node.
    pub bottleneck: Option<NodeId>,
    /// Committed-state oracle (verify it against the system!).
    pub oracle: Oracle,
}

struct ActiveTxn {
    txn: TxnId,
    spec: TxnSpec,
    next_op: usize,
    key: u64,
}

/// Runs `specs` to completion over `sys`, interleaving across clients.
pub fn run_workload<S: System>(sys: &mut S, specs: Vec<TxnSpec>) -> Result<RunStats> {
    let mut queues: Vec<(NodeId, VecDeque<TxnSpec>)> = Vec::new();
    for spec in specs {
        match queues.iter_mut().find(|(c, _)| *c == spec.client) {
            Some((_, q)) => q.push_back(spec),
            None => {
                let mut q = VecDeque::new();
                let client = spec.client;
                q.push_back(spec);
                queues.push((client, q));
            }
        }
    }
    let mut active: Vec<Option<ActiveTxn>> = (0..queues.len()).map(|_| None).collect();
    let mut wfg = WaitsForGraph::new();
    let mut oracle = Oracle::new();
    // Transactions whose commit has been submitted but not yet
    // acknowledged durable, in submission (= serialization) order.
    let mut committing: VecDeque<(TxnId, u64)> = VecDeque::new();
    // First-block sim-times of driver-level retry spans, reported to
    // the system via note_queue_wait when the blocked op finally runs.
    let mut blocked_since: HashMap<TxnId, SimTime> = HashMap::new();
    let mut stats = RunStats {
        committed: 0,
        user_aborts: 0,
        deadlock_aborts: 0,
        ops_executed: 0,
        net: NetStats::default(),
        faults: FaultStats::default(),
        sim_time: 0,
        max_busy: 0,
        bottleneck: None,
        oracle: Oracle::new(),
    };
    let mut next_key = 1u64;

    loop {
        let mut progressed = false;
        let mut all_done = true;
        // Acknowledge durable commits in submission order. Stopping at
        // the first pending one keeps oracle commit order identical to
        // the serialization order.
        while let Some(&(txn, key)) = committing.front() {
            if sys.poll_committed(txn)? {
                committing.pop_front();
                oracle.commit(key);
                stats.committed += 1;
                progressed = true;
            } else {
                break;
            }
        }
        for ci in 0..queues.len() {
            // Ensure an active transaction.
            if active[ci].is_none() {
                let Some(spec) = queues[ci].1.pop_front() else {
                    continue;
                };
                all_done = false;
                let client = queues[ci].0;
                match sys.begin(client) {
                    Ok(txn) => {
                        active[ci] = Some(ActiveTxn {
                            txn,
                            spec,
                            next_op: 0,
                            key: next_key,
                        });
                        next_key += 1;
                        progressed = true;
                    }
                    Err(e) if e.is_transient() => {
                        queues[ci].1.push_front(spec);
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
            all_done = false;
            // Execute one step of the active transaction.
            let a = active[ci].as_mut().expect("just ensured");
            let txn = a.txn;
            if a.next_op < a.spec.ops.len() {
                let op = a.spec.ops[a.next_op];
                let r = match op {
                    Op::Read { pid, slot } => sys.read(txn, pid, slot).map(|_| ()),
                    Op::Write { pid, slot, value } => sys.write(txn, pid, slot, value),
                };
                match r {
                    Ok(()) => {
                        if let Some(t0) = blocked_since.remove(&txn) {
                            let now = sys.network().clock().now();
                            sys.note_queue_wait(txn, now.saturating_sub(t0));
                        }
                        if let Op::Write { pid, slot, value } = op {
                            oracle.stage(a.key, pid, slot, value);
                        }
                        a.next_op += 1;
                        stats.ops_executed += 1;
                        wfg.remove(txn);
                        progressed = true;
                    }
                    Err(Error::WouldBlock { holders, .. }) => {
                        blocked_since
                            .entry(txn)
                            .or_insert_with(|| sys.network().clock().now());
                        wfg.set_waits(txn, &holders);
                        if let Some(victim) = wfg.find_victim() {
                            abort_victim(
                                sys,
                                &mut active,
                                &mut queues,
                                &mut oracle,
                                &mut wfg,
                                &mut blocked_since,
                                victim,
                            )?;
                            stats.deadlock_aborts += 1;
                            progressed = true;
                        }
                    }
                    Err(e) if e.is_transient() => {
                        blocked_since
                            .entry(txn)
                            .or_insert_with(|| sys.network().clock().now());
                    }
                    Err(e) => return Err(e),
                }
            } else {
                // Terminate.
                let a = active[ci].take().expect("active");
                wfg.remove(a.txn);
                blocked_since.remove(&a.txn);
                if a.spec.user_abort {
                    sys.abort(a.txn)?;
                    oracle.abort(a.key);
                    stats.user_aborts += 1;
                } else {
                    // Async commit: the oracle commit and the committed
                    // count land when the ack arrives (poll loop above),
                    // so concurrent submissions can share one log force.
                    sys.commit_submit(a.txn)?;
                    committing.push_back((a.txn, a.key));
                }
                progressed = true;
            }
        }
        sys.sample_telemetry();
        if all_done && active.iter().all(Option::is_none) && committing.is_empty() {
            break;
        }
        if !progressed {
            // Everything runnable is drained; drive the commit pipeline
            // (this may advance the sim-clock to the next group-commit
            // window deadline).
            if !committing.is_empty() && sys.pump_commits()? {
                continue;
            }
            return Err(Error::Protocol(
                "driver made no progress: transactions blocked with no deadlock victim".into(),
            ));
        }
    }
    // Every span the run produced has already been checked online as
    // it was emitted; this surfaces the first violation (with its
    // lineage slice) as a hard error so no run passes on a broken
    // invariant.
    sys.trace_check()?;
    let net = sys.network();
    stats.net = net.stats();
    stats.faults = net.fault_stats();
    stats.sim_time = net.clock().now();
    stats.max_busy = net.clock().max_busy();
    stats.bottleneck = net.clock().bottleneck();
    stats.oracle = oracle;
    Ok(stats)
}

fn abort_victim<S: System>(
    sys: &mut S,
    active: &mut [Option<ActiveTxn>],
    queues: &mut [(NodeId, VecDeque<TxnSpec>)],
    oracle: &mut Oracle,
    wfg: &mut WaitsForGraph,
    blocked_since: &mut HashMap<TxnId, SimTime>,
    victim: TxnId,
) -> Result<()> {
    let slot = active
        .iter()
        .position(|a| a.as_ref().is_some_and(|a| a.txn == victim))
        .ok_or_else(|| Error::Protocol(format!("victim {victim} not active")))?;
    let a = active[slot].take().expect("found above");
    if let Some(t0) = blocked_since.remove(&victim) {
        let now = sys.network().clock().now();
        sys.note_queue_wait(victim, now.saturating_sub(t0));
    }
    sys.abort(victim)?;
    oracle.abort(a.key);
    wfg.remove(victim);
    // Re-run the whole transaction later.
    let qi = queues
        .iter()
        .position(|(c, _)| *c == a.spec.client)
        .expect("client queue exists");
    queues[qi].1.push_back(a.spec);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, owned_pages, WorkloadConfig};
    use cblog_baselines::{ServerClientConfig, ServerCluster};
    use cblog_common::CostModel;
    use cblog_core::{Cluster, ClusterConfig};

    fn cbl(clients: usize, pages: u32) -> Cluster {
        let mut owned = vec![pages];
        owned.extend(std::iter::repeat(0).take(clients));
        Cluster::new(
            ClusterConfig::builder()
                .owned_pages(owned)
                .page_size(512)
                .buffer_frames(32)
                .default_owned_pages(0)
                .cost(CostModel::unit())
                .build(),
        )
        .unwrap()
    }

    #[test]
    fn workload_runs_and_verifies_on_cbl() {
        let mut c = cbl(2, 8);
        let cfg = WorkloadConfig {
            txns_per_client: 20,
            ops_per_txn: 6,
            write_ratio: 0.5,
            ..WorkloadConfig::default()
        };
        let specs = generate(
            &cfg,
            &[NodeId(1), NodeId(2)],
            &owned_pages(NodeId(0), 8),
            None,
        );
        let stats = run_workload(&mut c, specs).unwrap();
        assert_eq!(stats.committed, 40);
        let verified = stats.oracle.verify(&mut c, NodeId(1)).unwrap();
        assert!(verified > 0);
    }

    #[test]
    fn workload_runs_and_verifies_on_server_baseline() {
        let mut s = ServerCluster::new(ServerClientConfig {
            clients: 2,
            pages: 8,
            page_size: 512,
            client_buffer_frames: 32,
            server_buffer_frames: 64,
            cost: CostModel::unit(),
            group_commit: cblog_core::GroupCommitPolicy::Immediate,
        })
        .unwrap();
        let cfg = WorkloadConfig {
            txns_per_client: 20,
            ops_per_txn: 6,
            ..WorkloadConfig::default()
        };
        let specs = generate(
            &cfg,
            &[NodeId(1), NodeId(2)],
            &owned_pages(NodeId(0), 8),
            None,
        );
        let stats = run_workload(&mut s, specs).unwrap();
        assert_eq!(stats.committed, 40);
        let verified = stats.oracle.verify(&mut s, NodeId(1)).unwrap();
        assert!(verified > 0);
    }

    #[test]
    fn user_aborts_leave_no_trace() {
        let mut c = cbl(2, 4);
        let cfg = WorkloadConfig {
            txns_per_client: 15,
            ops_per_txn: 4,
            abort_prob: 0.4,
            write_ratio: 1.0,
            seed: 7,
            ..WorkloadConfig::default()
        };
        let specs = generate(
            &cfg,
            &[NodeId(1), NodeId(2)],
            &owned_pages(NodeId(0), 4),
            None,
        );
        let stats = run_workload(&mut c, specs).unwrap();
        assert!(stats.user_aborts > 0);
        assert_eq!(stats.committed + stats.user_aborts, 30);
        stats.oracle.verify(&mut c, NodeId(1)).unwrap();
    }

    #[test]
    fn contended_hotspot_resolves_deadlocks_and_verifies() {
        let mut c = cbl(3, 2);
        let cfg = WorkloadConfig {
            txns_per_client: 15,
            ops_per_txn: 4,
            write_ratio: 0.9,
            hot_access: 1.0,
            hot_fraction: 1.0,
            slots_per_page: 4,
            seed: 99,
            ..WorkloadConfig::default()
        };
        let specs = generate(
            &cfg,
            &[NodeId(1), NodeId(2), NodeId(3)],
            &owned_pages(NodeId(0), 2),
            None,
        );
        let stats = run_workload(&mut c, specs).unwrap();
        assert_eq!(stats.committed, 45, "all transactions eventually commit");
        stats.oracle.verify(&mut c, NodeId(2)).unwrap();
    }
}
