//! Resource-time telemetry collection and the `obsreport` renderer.
//!
//! Each scenario re-runs one experiment shape with
//! [`ClusterConfig::telemetry`] enabled, so every counter, gauge and
//! histogram of the run becomes a per-interval time series, and
//! exports one self-contained JSON document combining:
//!
//! * the per-node **resource-time profile** — simulated time split
//!   into the [`Bucket`] categories (disk force, CPU, network
//!   handling, lock wait, recovery replay) the sim-clock attributes as
//!   it charges,
//! * a **folded-stack** breakdown (`flamegraph.pl` compatible: one
//!   `frame;frame value` line per node × bucket) whose per-node sum is
//!   exactly the node's total simulated time (busy + lock wait),
//! * the sampled **time series** rings ([`cblog_common::Sampler`]).
//!
//! The `obsreport` bin renders the JSON as inline-SVG HTML —
//! [`render_html`] works from the parsed [`JsonValue`], not the live
//! cluster, so it renders any previously saved export equally well.
//!
//! Telemetry draws no randomness and never charges the sim-clock, so
//! the export is deterministic: same scenario ⇒ byte-identical JSON
//! (tested below).
//!
//! [`ClusterConfig::telemetry`]: cblog_core::ClusterConfig

use crate::driver::run_workload;
use crate::experiments::{cbl_builder, e5_single_crash};
use crate::workload::{generate, WorkloadConfig};
use cblog_common::jsonv::JsonValue;
use cblog_common::obs::json_escape;
use cblog_common::{Bucket, Error, NodeId, PageId, Result, SimTime};
use cblog_core::Cluster;
use std::fmt::Write as _;

/// Scenario names [`run_scenario`] accepts.
pub const SCENARIOS: &[&str] = &["e1", "e2", "e5"];

/// Sampling interval, sim-µs.
const INTERVAL_US: SimTime = 5_000;
/// Ring capacity per series.
const RING_CAP: usize = 512;

/// Runs the named telemetry scenario and returns its JSON export.
pub fn run_scenario(name: &str) -> Result<String> {
    let c = match name {
        // E1: steady-state single-client commit stream — the paper's
        // headline workload. Disk time (the one local force per
        // commit) should dominate the client's profile.
        "e1" => {
            let mut c = Cluster::new(
                cbl_builder(1, 8, 16)
                    .telemetry(INTERVAL_US, RING_CAP)
                    .build(),
            )?;
            let cfg = WorkloadConfig {
                txns_per_client: 100,
                ops_per_txn: 4,
                write_ratio: 1.0,
                seed: 42,
                slots_per_page: 8,
                ..WorkloadConfig::default()
            };
            let pages: Vec<PageId> = (0..8).map(|i| PageId::new(NodeId(0), i)).collect();
            let specs = generate(&cfg, &[NodeId(1)], &pages, None);
            run_workload(&mut c, specs)?;
            c
        }
        // E2: eight clients on private partitions — per-node
        // utilization timelines show the commit work staying local.
        "e2" => {
            let clients = 8usize;
            let per = 4u32;
            let pages = clients as u32 * per;
            let mut c = Cluster::new(
                cbl_builder(clients, pages, per as usize * 2)
                    .telemetry(INTERVAL_US, RING_CAP)
                    .build(),
            )?;
            let cfg = WorkloadConfig {
                txns_per_client: 30,
                ops_per_txn: 4,
                write_ratio: 1.0,
                seed: 1234,
                slots_per_page: 8,
                ..WorkloadConfig::default()
            };
            let client_ids: Vec<NodeId> = (1..=clients as u32).map(NodeId).collect();
            let all: Vec<PageId> = (0..pages).map(|i| PageId::new(NodeId(0), i)).collect();
            let private = move |cl: NodeId| -> Vec<PageId> {
                let base = (cl.0 - 1) * per;
                (base..base + per)
                    .map(|i| PageId::new(NodeId(0), i))
                    .collect()
            };
            let specs = generate(&cfg, &client_ids, &all, Some(&private));
            run_workload(&mut c, specs)?;
            c
        }
        // E5: owner crash + NodePSNList recovery — the one scenario
        // where the Replay bucket is populated (every sim-µs recovery
        // charges is attributed to it).
        "e5" => {
            let d = 4;
            let (clients, pages, frames) = e5_single_crash::shape(d);
            let mut c = Cluster::new(
                cbl_builder(clients, pages, frames)
                    .telemetry(INTERVAL_US, RING_CAP)
                    .build(),
            )?;
            e5_single_crash::run_on(&mut c, d);
            c
        }
        other => {
            return Err(Error::Protocol(format!(
                "unknown telemetry scenario {other:?} (expected one of {SCENARIOS:?})"
            )))
        }
    };
    Ok(export_json(name, &c))
}

/// Folded-stack lines (`flamegraph.pl` input format): one
/// `<label>;n<id>;<bucket> <µs>` line per node × nonzero bucket. The
/// per-node sum equals the node's total simulated time — busy time
/// (disk + cpu + net + replay partition it exactly) plus lock wait.
pub fn folded_lines(label: &str, c: &Cluster) -> Vec<String> {
    let clock = c.network().clock();
    let mut out = Vec::new();
    for i in 0..c.node_count() {
        let id = NodeId(i as u32);
        for b in Bucket::ALL {
            let us = clock.bucket_us(id, b);
            if us > 0 {
                out.push(format!("{label};n{i};{} {us}", b.label()));
            }
        }
    }
    out
}

/// Serializes the full telemetry export for a finished run:
/// per-node profiles, folded stack, and the sampler's series rings.
pub fn export_json(label: &str, c: &Cluster) -> String {
    let clock = c.network().clock();
    let now = clock.now();
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"experiment\":\"{}\",\"now_us\":{now},\"nodes\":[",
        json_escape(label)
    );
    for i in 0..c.node_count() {
        let id = NodeId(i as u32);
        if i > 0 {
            out.push(',');
        }
        let busy = clock.busy(id);
        let wait = clock.bucket_us(id, Bucket::LockWait);
        let total = busy + wait;
        // Integer percent keeps the export byte-stable (busy can
        // exceed wall-clock `now` — overlapped charges — so >100 is
        // legitimate for a node that worked while others idled).
        let util = (busy * 100).checked_div(now).unwrap_or(0);
        let _ = write!(
            out,
            "{{\"node\":{i},\"busy_us\":{busy},\"total_us\":{total},\"utilization_pct\":{util},\"buckets\":{{"
        );
        for (bi, b) in Bucket::ALL.into_iter().enumerate() {
            if bi > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", b.label(), clock.bucket_us(id, b));
        }
        out.push_str("}}");
    }
    out.push_str("],\"folded\":[");
    for (i, line) in folded_lines(label, c).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", json_escape(line));
    }
    out.push_str("],\"telemetry\":");
    match c.sampler() {
        Some(s) => out.push_str(&s.to_json()),
        None => out.push_str("null"),
    }
    out.push('}');
    out
}

// ----------------------------------------------------------------------
// HTML rendering (consumed by the `obsreport` bin)
// ----------------------------------------------------------------------

const BUCKET_COLORS: &[(&str, &str)] = &[
    ("disk", "#d62728"),
    ("cpu", "#1f77b4"),
    ("net", "#2ca02c"),
    ("lock_wait", "#ff7f0e"),
    ("replay", "#9467bd"),
];

fn color_of(bucket: &str) -> &'static str {
    BUCKET_COLORS
        .iter()
        .find(|(b, _)| *b == bucket)
        .map(|(_, c)| *c)
        .unwrap_or("#7f7f7f")
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders a parsed telemetry export ([`export_json`] output) as a
/// self-contained HTML page: per-node stacked resource-time bars, one
/// inline-SVG sparkline per sampled series, and the folded stack.
/// Works from the JSON alone so saved exports render identically.
pub fn render_html(doc: &JsonValue) -> std::result::Result<String, String> {
    let label = doc
        .get("experiment")
        .and_then(|v| v.as_str())
        .ok_or("export has no \"experiment\" field")?;
    let now = doc.get("now_us").and_then(|v| v.as_i64()).unwrap_or(0);
    let nodes = doc
        .get("nodes")
        .and_then(|v| v.as_arr())
        .ok_or("export has no \"nodes\" array")?;
    let mut out = String::new();
    let _ = write!(
        out,
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
         <title>obsreport: {t}</title>\
         <style>body{{font-family:monospace;max-width:980px;margin:2em auto}}\
         h2{{border-bottom:1px solid #ccc}}\
         .legend span{{display:inline-block;margin-right:1em}}\
         .chip{{display:inline-block;width:0.8em;height:0.8em;margin-right:0.3em}}\
         table{{border-collapse:collapse}}td,th{{padding:2px 10px;text-align:right}}</style>\
         </head><body>\n<h1>obsreport — {t}</h1>\n\
         <p>simulated wall-clock: {now} µs</p>\n",
        t = html_escape(label),
    );
    // Legend.
    out.push_str("<p class=\"legend\">");
    for (b, c) in BUCKET_COLORS {
        let _ = write!(
            out,
            "<span><span class=\"chip\" style=\"background:{c}\"></span>{b}</span>"
        );
    }
    out.push_str("</p>\n");

    render_profile_bars(&mut out, nodes)?;
    render_cells(&mut out, doc);
    render_series(&mut out, doc);
    render_folded(&mut out, doc);
    out.push_str("</body></html>\n");
    Ok(out)
}

/// Renders two telemetry exports of the *same seeded workload* — one
/// from the deterministic simulator, one from the threaded runtime —
/// side by side: each engine's per-node profile bars, then a combined
/// table giving every node × bucket in both engines' µs *and* shares.
/// Simulated µs and wall-clock µs tick different clocks, so the
/// shares (bucket / node total) are the comparable columns; matching
/// shapes with diverging absolutes is the expected signature of a
/// faithful model.
///
/// Works from the parsed JSON alone, like [`render_html`], so any two
/// saved exports (e.g. an `e1` scenario and a `BENCH_rt_threads.json`)
/// can be compared after the fact.
pub fn render_compare_html(sim: &JsonValue, rt: &JsonValue) -> std::result::Result<String, String> {
    let label_of = |doc: &JsonValue| -> String {
        doc.get("experiment")
            .and_then(|v| v.as_str())
            .unwrap_or("?")
            .to_string()
    };
    let (sim_label, rt_label) = (label_of(sim), label_of(rt));
    let mut out = String::new();
    let _ = write!(
        out,
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
         <title>obsreport: {s} vs {r}</title>\
         <style>body{{font-family:monospace;max-width:980px;margin:2em auto}}\
         h2{{border-bottom:1px solid #ccc}}\
         .legend span{{display:inline-block;margin-right:1em}}\
         .chip{{display:inline-block;width:0.8em;height:0.8em;margin-right:0.3em}}\
         table{{border-collapse:collapse}}td,th{{padding:2px 10px;text-align:right}}</style>\
         </head><body>\n<h1>obsreport — sim vs rt</h1>\n",
        s = html_escape(&sim_label),
        r = html_escape(&rt_label),
    );
    out.push_str("<p class=\"legend\">");
    for (b, c) in BUCKET_COLORS {
        let _ = write!(
            out,
            "<span><span class=\"chip\" style=\"background:{c}\"></span>{b}</span>"
        );
    }
    out.push_str("</p>\n");

    for (title, doc) in [
        ("Simulated time", sim),
        ("Threaded runtime (wall clock)", rt),
    ] {
        let label = label_of(doc);
        let now = doc.get("now_us").and_then(|v| v.as_i64()).unwrap_or(0);
        let _ = writeln!(out, "<h2>{title} — {} ({now} µs)</h2>", html_escape(&label));
        let nodes = doc
            .get("nodes")
            .and_then(|v| v.as_arr())
            .ok_or_else(|| format!("{label}: export has no \"nodes\" array"))?;
        render_profile_bars(&mut out, nodes)?;
    }

    render_compare_table(&mut out, sim, rt)?;
    render_cells(&mut out, rt);
    out.push_str("</body></html>\n");
    Ok(out)
}

/// Per node × bucket: `(µs, share-of-node-total)` from both exports in
/// one table, nodes matched by id.
fn render_compare_table(
    out: &mut String,
    sim: &JsonValue,
    rt: &JsonValue,
) -> std::result::Result<(), String> {
    // node id → (total_us, bucket → µs), per engine.
    type Profile = std::collections::BTreeMap<i64, (i64, std::collections::BTreeMap<String, i64>)>;
    let profile_of = |doc: &JsonValue| -> std::result::Result<Profile, String> {
        let nodes = doc
            .get("nodes")
            .and_then(|v| v.as_arr())
            .ok_or("export has no \"nodes\" array")?;
        let mut map = Profile::new();
        for (i, n) in nodes.iter().enumerate() {
            let id = n.get("node").and_then(|v| v.as_i64()).unwrap_or(i as i64);
            let total = n.get("total_us").and_then(|v| v.as_i64()).unwrap_or(0);
            let buckets = n
                .get("buckets")
                .and_then(|v| v.as_obj())
                .ok_or("node entry has no \"buckets\" object")?;
            let bs = buckets
                .iter()
                .map(|(k, v)| (k.clone(), v.as_i64().unwrap_or(0)))
                .collect();
            map.insert(id, (total, bs));
        }
        Ok(map)
    };
    let sim_p = profile_of(sim)?;
    let rt_p = profile_of(rt)?;

    out.push_str(
        "<h2>Bucket shares, sim vs rt</h2>\n\
         <p>Different clocks — compare the share columns, not the µs.</p>\n\
         <table><tr><th>node</th><th>bucket</th>\
         <th>sim µs</th><th>sim share</th><th>rt µs</th><th>rt share</th></tr>\n",
    );
    let ids: std::collections::BTreeSet<i64> = sim_p.keys().chain(rt_p.keys()).copied().collect();
    let share = |us: i64, total: i64| -> String {
        if total > 0 {
            format!("{:.1}%", us as f64 * 100.0 / total as f64)
        } else {
            "—".to_string()
        }
    };
    for id in ids {
        for (bucket, _) in BUCKET_COLORS {
            let (sim_us, sim_total) = sim_p
                .get(&id)
                .map(|(t, bs)| (bs.get(*bucket).copied().unwrap_or(0), *t))
                .unwrap_or((0, 0));
            let (rt_us, rt_total) = rt_p
                .get(&id)
                .map(|(t, bs)| (bs.get(*bucket).copied().unwrap_or(0), *t))
                .unwrap_or((0, 0));
            if sim_us == 0 && rt_us == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "<tr><td>n{id}</td>\
                 <td><span class=\"chip\" style=\"background:{c}\"></span>{bucket}</td>\
                 <td>{sim_us}</td><td>{}</td><td>{rt_us}</td><td>{}</td></tr>",
                share(sim_us, sim_total),
                share(rt_us, rt_total),
                c = color_of(bucket),
            );
        }
    }
    out.push_str("</table>\n");
    Ok(())
}

/// Benchmark-cell table (threaded-runtime exports): one row per
/// benchmark combination. The column set is the subset of known cell
/// keys actually present in the export, so the one renderer covers
/// every rtbench mode (throughput sweep, recovery, trace overhead).
/// Absent from simulator exports — skipped silently.
fn render_cells(out: &mut String, doc: &JsonValue) {
    let Some(cells) = doc.get("cells").and_then(|v| v.as_arr()) else {
        return;
    };
    if cells.is_empty() {
        return;
    }
    out.push_str("<h2>Benchmark cells (wall clock)</h2>\n<table><tr>");
    const COLS: &[(&str, &str)] = &[
        ("mpl", "MPL"),
        ("policy", "policy"),
        ("workers", "workers"),
        ("pages", "pages"),
        ("waves", "waves"),
        ("commits", "commits"),
        ("commits_per_sec", "commits/s"),
        ("p50_exact_us", "p50 µs (exact)"),
        ("p99_exact_us", "p99 µs (exact)"),
        ("p50_hist_us", "p50 µs (hist)"),
        ("p99_hist_us", "p99 µs (hist)"),
        ("p50_us", "p50 µs"),
        ("p99_us", "p99 µs"),
        ("forces", "forces"),
        ("forces_per_commit", "forces/commit"),
        ("commit_msgs", "commit msgs"),
        ("wall_off_us", "wall µs (untraced)"),
        ("wall_on_us", "wall µs (traced)"),
        ("overhead_pct", "overhead %"),
        ("wall_us", "wall µs"),
        ("spans", "spans"),
    ];
    let cols: Vec<&(&str, &str)> = COLS
        .iter()
        .filter(|(key, _)| cells.iter().any(|c| c.get(key).is_some()))
        .collect();
    for (_, title) in &cols {
        let _ = write!(out, "<th>{title}</th>");
    }
    out.push_str("</tr>\n");
    for cell in cells {
        out.push_str("<tr>");
        for (key, _) in &cols {
            match cell.get(key) {
                Some(v) => {
                    if let Some(s) = v.as_str() {
                        let _ = write!(out, "<td>{}</td>", html_escape(s));
                    } else if let Some(f) = v.as_f64() {
                        if f.fract() == 0.0 {
                            let _ = write!(out, "<td>{}</td>", f as i64);
                        } else {
                            let _ = write!(out, "<td>{f:.2}</td>");
                        }
                    } else {
                        out.push_str("<td>—</td>");
                    }
                }
                None => out.push_str("<td>—</td>"),
            }
        }
        out.push_str("</tr>\n");
    }
    out.push_str("</table>\n");
}

/// Per-node stacked horizontal bars: each node's total simulated time
/// split by bucket, all bars on a shared scale.
fn render_profile_bars(out: &mut String, nodes: &[JsonValue]) -> std::result::Result<(), String> {
    out.push_str("<h2>Resource-time profile (per node)</h2>\n");
    let max_total = nodes
        .iter()
        .filter_map(|n| n.get("total_us").and_then(|v| v.as_i64()))
        .max()
        .unwrap_or(1)
        .max(1);
    let bar_w = 700.0;
    let row_h = 24;
    let h = nodes.len() * row_h + 8;
    let _ = writeln!(
        out,
        "<svg width=\"860\" height=\"{h}\" xmlns=\"http://www.w3.org/2000/svg\">"
    );
    for (i, n) in nodes.iter().enumerate() {
        let id = n.get("node").and_then(|v| v.as_i64()).unwrap_or(i as i64);
        let total = n.get("total_us").and_then(|v| v.as_i64()).unwrap_or(0);
        let util = n
            .get("utilization_pct")
            .and_then(|v| v.as_i64())
            .unwrap_or(0);
        let y = i * row_h + 4;
        let _ = write!(
            out,
            "<text x=\"0\" y=\"{ty}\" font-size=\"12\">n{id}</text>",
            ty = y + 14
        );
        let mut x = 60.0;
        let buckets = n
            .get("buckets")
            .and_then(|v| v.as_obj())
            .ok_or("node entry has no \"buckets\" object")?;
        for (name, v) in buckets {
            let us = v.as_i64().unwrap_or(0);
            if us <= 0 {
                continue;
            }
            let w = bar_w * us as f64 / max_total as f64;
            let _ = write!(
                out,
                "<rect x=\"{x:.1}\" y=\"{y}\" width=\"{w:.1}\" height=\"18\" fill=\"{c}\">\
                 <title>n{id} {name}: {us} µs</title></rect>",
                c = color_of(name),
            );
            x += w;
        }
        let _ = write!(
            out,
            "<text x=\"{tx:.1}\" y=\"{ty}\" font-size=\"11\" fill=\"#555\">{total} µs · {util}%</text>",
            tx = x + 6.0,
            ty = y + 14
        );
    }
    out.push_str("</svg>\n");
    Ok(())
}

/// One sparkline per sampled series (bounded to keep the page small;
/// a note reports anything elided).
fn render_series(out: &mut String, doc: &JsonValue) {
    let Some(tele) = doc.get("telemetry") else {
        return;
    };
    let Some(series) = tele.get("series").and_then(|v| v.as_obj()) else {
        return;
    };
    let interval = tele
        .get("interval_us")
        .and_then(|v| v.as_i64())
        .unwrap_or(0);
    let _ = writeln!(
        out,
        "<h2>Time series ({} sampled every {interval} µs)</h2>",
        series.len()
    );
    const MAX_CHARTS: usize = 80;
    for (name, s) in series.iter().take(MAX_CHARTS) {
        let samples: Vec<(f64, f64)> = s
            .get("samples")
            .and_then(|v| v.as_arr())
            .map(|arr| {
                arr.iter()
                    .filter_map(|p| Some((p.idx(0)?.as_f64()?, p.idx(1)?.as_f64()?)))
                    .collect()
            })
            .unwrap_or_default();
        if samples.is_empty() {
            continue;
        }
        let (w, h) = (700.0, 42.0);
        let tmin = samples.first().map(|p| p.0).unwrap_or(0.0);
        let tmax = samples.last().map(|p| p.0).unwrap_or(1.0).max(tmin + 1.0);
        let vmin = samples.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let vmax = samples
            .iter()
            .map(|p| p.1)
            .fold(f64::NEG_INFINITY, f64::max);
        let vspan = (vmax - vmin).max(1.0);
        let mut pts = String::new();
        for (t, v) in &samples {
            let x = (t - tmin) / (tmax - tmin) * w;
            let y = h - 4.0 - (v - vmin) / vspan * (h - 8.0);
            let _ = write!(pts, "{x:.1},{y:.1} ");
        }
        let last = samples.last().map(|p| p.1).unwrap_or(0.0);
        let _ = writeln!(
            out,
            "<div><b>{n}</b> <span style=\"color:#555\">min {vmin} · max {vmax} · last {last}</span><br>\
             <svg width=\"{w}\" height=\"{h}\" xmlns=\"http://www.w3.org/2000/svg\">\
             <polyline points=\"{pts}\" fill=\"none\" stroke=\"#1f77b4\" stroke-width=\"1.2\"/>\
             </svg></div>",
            n = html_escape(name),
        );
    }
    if series.len() > MAX_CHARTS {
        let _ = writeln!(
            out,
            "<p>({} more series elided — see the JSON export)</p>",
            series.len() - MAX_CHARTS
        );
    }
}

fn render_folded(out: &mut String, doc: &JsonValue) {
    let Some(folded) = doc.get("folded").and_then(|v| v.as_arr()) else {
        return;
    };
    out.push_str("<h2>Folded stack (flamegraph.pl compatible)</h2>\n<pre>");
    for line in folded {
        if let Some(s) = line.as_str() {
            let _ = writeln!(out, "{}", html_escape(s));
        }
    }
    out.push_str("</pre>\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use cblog_common::jsonv;
    use std::collections::BTreeMap;

    #[test]
    fn folded_stack_sums_to_total_simulated_time_per_node() {
        for name in SCENARIOS {
            let json = run_scenario(name).unwrap();
            let doc = jsonv::parse(&json).unwrap();
            // Re-aggregate the folded lines and compare against the
            // per-node totals the export claims.
            let mut per_node: BTreeMap<String, i64> = BTreeMap::new();
            for line in doc.get("folded").unwrap().as_arr().unwrap() {
                let line = line.as_str().unwrap();
                let (frames, us) = line.rsplit_once(' ').unwrap();
                let node = frames.split(';').nth(1).unwrap().to_string();
                *per_node.entry(node).or_default() += us.parse::<i64>().unwrap();
            }
            for n in doc.get("nodes").unwrap().as_arr().unwrap() {
                let id = n.get("node").and_then(|v| v.as_i64()).unwrap();
                let total = n.get("total_us").and_then(|v| v.as_i64()).unwrap();
                let folded = per_node.get(&format!("n{id}")).copied().unwrap_or(0);
                assert_eq!(
                    folded, total,
                    "{name}: folded stack for n{id} must sum to busy+lock_wait"
                );
            }
        }
    }

    #[test]
    fn e5_export_attributes_recovery_to_the_replay_bucket() {
        let json = run_scenario("e5").unwrap();
        let doc = jsonv::parse(&json).unwrap();
        let replay: i64 = doc
            .get("nodes")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|n| {
                n.get("buckets")
                    .and_then(|b| b.get("replay"))
                    .and_then(|v| v.as_i64())
                    .unwrap_or(0)
            })
            .sum();
        assert!(replay > 0, "recovery must charge the replay bucket");
    }

    #[test]
    fn exports_are_byte_identical_across_runs() {
        for name in SCENARIOS {
            let a = run_scenario(name).unwrap();
            let b = run_scenario(name).unwrap();
            assert_eq!(a, b, "{name} telemetry export must be deterministic");
        }
    }

    #[test]
    fn html_renders_svg_profile_and_series_from_the_json_alone() {
        let json = run_scenario("e1").unwrap();
        let doc = jsonv::parse(&json).unwrap();
        let html = render_html(&doc).unwrap();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"), "inline SVG profile bars");
        assert!(html.contains("polyline"), "series sparklines");
        assert!(html.contains("disk"), "bucket legend");
        assert!(html.contains("flamegraph.pl"), "folded stack section");
        assert!(
            !html.contains("src=") && !html.contains("href="),
            "self-contained: no external references"
        );
    }

    #[test]
    fn html_renders_benchmark_cells_when_present() {
        // Shape of an rtbench export: the usual skeleton plus `cells`.
        let json = r#"{"experiment":"rt_threads","now_us":1234,
            "nodes":[{"node":0,"busy_us":10,"total_us":20,"utilization_pct":50,
                      "buckets":{"disk":4,"cpu":3,"net":3,"lock_wait":0,"replay":0}}],
            "folded":["rt_threads;n0;disk 4"],"telemetry":null,
            "cells":[{"mpl":4,"policy":"window","commits":64,
                      "commits_per_sec":22122.4,"p50_us":410,"p99_us":500,
                      "forces":16,"forces_per_commit":0.25,
                      "commit_msgs":0,"wall_us":2893}]}"#;
        let doc = jsonv::parse(json).unwrap();
        let html = render_html(&doc).unwrap();
        assert!(html.contains("Benchmark cells"), "cells table heading");
        assert!(html.contains("window"), "policy value");
        assert!(html.contains("22122.40"), "float rendered with decimals");
        assert!(html.contains(">64<"), "integer rendered without decimals");

        // Sim exports carry no cells; the section must vanish entirely.
        let sim = run_scenario("e1").unwrap();
        let sim_doc = jsonv::parse(&sim).unwrap();
        assert!(!render_html(&sim_doc).unwrap().contains("Benchmark cells"));
    }

    #[test]
    fn compare_html_renders_both_profiles_side_by_side() {
        let sim = run_scenario("e1").unwrap();
        let sim_doc = jsonv::parse(&sim).unwrap();
        let rt = r#"{"experiment":"rt_threads","now_us":5000,
            "nodes":[{"node":0,"busy_us":80,"total_us":100,"utilization_pct":80,
                      "buckets":{"disk":50,"cpu":20,"net":10,"lock_wait":20,"replay":0}}],
            "folded":["rt_threads;n0;disk 50"],"telemetry":null,
            "cells":[{"mpl":1,"policy":"immediate","commits":16,
                      "p50_exact_us":321,"p99_exact_us":6661,
                      "p50_hist_us":511,"p99_hist_us":6661,"spans":96}]}"#;
        let rt_doc = jsonv::parse(rt).unwrap();
        let html = render_compare_html(&sim_doc, &rt_doc).unwrap();
        assert!(html.contains("Simulated time"), "sim profile section");
        assert!(html.contains("Threaded runtime"), "rt profile section");
        assert!(html.contains("Bucket shares"), "comparison table");
        assert!(html.contains("50.0%"), "rt disk share of 100 µs total");
        assert!(
            html.contains("p50 µs (exact)") && html.contains("p50 µs (hist)"),
            "exact and histogram percentiles rendered as separate columns"
        );
        assert!(
            !html.contains("p50 µs</th>"),
            "legacy percentile column absent when the keys are absent"
        );
        assert!(
            !html.contains("src=") && !html.contains("href="),
            "self-contained: no external references"
        );

        // The single renderer also handles the overhead export's cells.
        let ovh = r#"{"experiment":"rt_trace_overhead","now_us":9,
            "nodes":[{"node":0,"busy_us":8,"total_us":9,"utilization_pct":88,
                      "buckets":{"disk":4,"cpu":4,"net":0,"lock_wait":0,"replay":0}}],
            "folded":[],"telemetry":null,
            "cells":[{"mpl":1,"policy":"window","commits":16,
                      "wall_off_us":2189,"wall_on_us":2930,
                      "overhead_pct":33.85,"spans":96}]}"#;
        let html = render_html(&jsonv::parse(ovh).unwrap()).unwrap();
        assert!(html.contains("overhead %"), "overhead column present");
        assert!(html.contains("33.85"), "overhead value rendered");
        assert!(
            !html.contains("forces/commit"),
            "columns absent from the cells are not rendered"
        );
    }

    #[test]
    fn unknown_scenario_is_rejected() {
        let err = run_scenario("e99").unwrap_err();
        assert!(err.to_string().contains("unknown telemetry scenario"));
    }
}
