//! Traced scenario runners behind the `tracedump` bin.
//!
//! Each scenario replays one of the recovery/checkpoint experiments
//! with [`ClusterConfig::tracing`] enabled and returns the traced
//! cluster, so callers can dump per-page PSN lineage
//! ([`cblog_common::span::Tracer::render_lineage`]) or the Chrome
//! trace-event export. Every runner ends with
//! [`Cluster::trace_check`], so a scenario that completes has been
//! verified by the invariant watchdog span-by-span.
//!
//! Tracing draws no randomness and never charges the sim-clock, so a
//! scenario is exactly as deterministic as its untraced experiment
//! twin: same seed ⇒ byte-identical JSON export (tested below).
//!
//! [`ClusterConfig::tracing`]: cblog_core::ClusterConfig

use crate::driver::run_workload;
use crate::experiments::{cbl_builder, e5_single_crash, e6_multi_crash, e7_checkpoint};
use cblog_common::{Error, NodeId, Result};
use cblog_core::Cluster;

/// Scenario names [`run_scenario`] accepts.
pub const SCENARIOS: &[&str] = &["e5", "e6", "e7"];

/// Runs the named scenario with tracing enabled and returns the traced
/// cluster. Fails if the watchdog flagged any invariant violation
/// (the error carries the offending lineage slice).
pub fn run_scenario(name: &str) -> Result<Cluster> {
    let c = match name {
        // E5: owner crashes with 4 dirty pages; clients replay them in
        // PSN order. The richest lineage: updates, transfers, crash,
        // recovery phases, replay hops.
        "e5" => {
            let d = 4;
            let (clients, pages, frames) = e5_single_crash::shape(d);
            let mut c = Cluster::new(cbl_builder(clients, pages, frames).tracing(true).build())?;
            e5_single_crash::run_on(&mut c, d);
            c
        }
        // E6: two simultaneous crashes (an owner and a client) over the
        // Figure-1 topology; cross-owner traffic plus a loser undo.
        "e6" => {
            let mut c = Cluster::new(e6_multi_crash::builder().tracing(true).build())?;
            e6_multi_crash::run_on(&mut c, &[NodeId(0), NodeId(2)]);
            c
        }
        // E7: the checkpoint workload (4 clients, contended pages) plus
        // one checkpoint per node — no crash, so the trace shows the
        // steady-state protocol: fetches, callbacks, lock grants,
        // message-free commits.
        "e7" => {
            let clients = 4;
            let mut c = Cluster::new(cbl_builder(clients, 8, 16).tracing(true).build())?;
            run_workload(&mut c, e7_checkpoint::warm(clients))?;
            for n in 0..=clients as u32 {
                c.checkpoint(NodeId(n))?;
            }
            c
        }
        other => {
            return Err(Error::Protocol(format!(
                "unknown tracedump scenario {other:?} (expected one of {SCENARIOS:?})"
            )))
        }
    };
    c.trace_check()?;
    Ok(c)
}

/// One-paragraph trace summary: span counts, drops, watchdog verdict,
/// busiest page. The `tracedump` bin prints this header before the
/// lineage.
pub fn summary(c: &Cluster) -> String {
    let t = c.tracer();
    let verdict = match t.check() {
        Ok(()) => "all invariants hold".to_string(),
        Err(e) => format!("VIOLATIONS\n{e}"),
    };
    let busiest = t
        .busiest_page()
        .map_or_else(|| "-".to_string(), |p| p.to_string());
    format!(
        "spans: {} retained, {} dropped · busiest page: {busiest} · watchdog: {verdict}",
        t.len(),
        t.dropped(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_traced_run_passes_the_watchdog_with_full_lineage() {
        let c = run_scenario("e5").expect("watchdog-clean");
        let t = c.tracer();
        assert!(t.len() > 100, "rich trace: {} spans", t.len());
        assert_eq!(t.violations().len(), 0);
        let pid = t.busiest_page().expect("page-scoped spans exist");
        let lin = t.render_lineage(pid);
        // The crash punctuates the lineage and replay hops follow it.
        assert!(lin.contains("crash N0"), "{lin}");
        assert!(lin.contains("replay-hop"), "{lin}");
        assert!(lin.contains("update"), "{lin}");
        assert!(summary(&c).contains("all invariants hold"));
    }

    #[test]
    fn e6_traced_run_covers_multi_crash_recovery() {
        let c = run_scenario("e6").expect("watchdog-clean");
        let spans = c.tracer().spans();
        use cblog_common::span::SpanKind;
        let crashes = spans
            .iter()
            .filter(|s| matches!(s.kind, SpanKind::Crash { .. }))
            .count();
        assert_eq!(crashes, 2, "both crashed nodes marked");
        assert!(spans
            .iter()
            .any(|s| matches!(s.kind, SpanKind::Recovery { nodes: 2 })));
        assert!(spans
            .iter()
            .any(|s| matches!(s.kind, SpanKind::ReplayHop { .. })));
    }

    #[test]
    fn e7_traced_run_shows_steady_state_protocol() {
        let c = run_scenario("e7").expect("watchdog-clean");
        let spans = c.tracer().spans();
        use cblog_common::span::SpanKind;
        assert!(spans.iter().any(|s| matches!(
            s.kind,
            SpanKind::Txn {
                committed: true,
                ..
            }
        )));
        assert!(spans
            .iter()
            .any(|s| matches!(s.kind, SpanKind::LockGrant { .. })));
        assert!(spans
            .iter()
            .any(|s| matches!(s.kind, SpanKind::Transfer { .. })));
        // No crash in E7, so no recovery machinery in the trace.
        assert!(!spans
            .iter()
            .any(|s| matches!(s.kind, SpanKind::Crash { .. })));
    }

    #[test]
    fn unknown_scenario_is_rejected() {
        let err = run_scenario("e99").unwrap_err();
        assert!(err.to_string().contains("unknown tracedump scenario"));
    }

    #[test]
    fn same_seed_exports_are_byte_identical() {
        // The determinism contract behind `tracedump --json`: tracing
        // adds no randomness and no clock charges, so re-running a
        // scenario reproduces the export byte for byte.
        for name in ["e5", "e7"] {
            let a = run_scenario(name).unwrap().tracer().chrome_trace_json();
            let b = run_scenario(name).unwrap().tracer().chrome_trace_json();
            assert_eq!(a, b, "{name} export must be deterministic");
            assert!(a.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        }
    }
}
