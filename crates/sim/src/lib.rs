//! Experiment harness: workload generation, a deterministic
//! transaction driver that works over both the client-based-logging
//! cluster and the server-logging baseline, a committed-state oracle,
//! plain-text report tables, and the T1/E1–E11/A1 experiment suite mapped
//! out in `DESIGN.md`.

pub mod baseline;
pub mod driver;
pub mod experiments;
pub mod oracle;
pub mod report;
pub mod telemetry;
pub mod tracedump;
pub mod workload;

pub use driver::{run_workload, RunStats, System};
pub use oracle::Oracle;
pub use report::Table;
pub use workload::{Op, TransferSpec, TxnSpec, WorkloadConfig};
