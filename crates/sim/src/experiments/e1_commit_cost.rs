//! E1 — commit-time cost.
//!
//! Paper §1.1: "Local logging eliminates the need to send log records
//! to remote nodes during transaction execution and at transaction
//! commit." Steady state (locks and pages cached), one client updating
//! its working set: client-based logging commits with zero messages
//! and one local force; server logging ships its records and pays a
//! server round trip plus a server force per commit.

use super::{cbl_cluster, cbl_cluster_gc, csa_cluster, pages0};
use crate::report::{f, Table};
use cblog_common::metrics::keys;
use cblog_common::{HistogramSnapshot, NodeId, TxnId};
use cblog_core::GroupCommitPolicy;

const TXNS: u64 = 100;

/// Per-transaction commit costs of the CBL client, including the
/// commit-force latency distribution from the client's metrics
/// registry.
pub struct CblCommitCost {
    /// Messages per transaction.
    pub msgs: f64,
    /// Network bytes per transaction.
    pub bytes: f64,
    /// Log forces per transaction.
    pub forces: f64,
    /// `wal/commit_force_us` distribution over the measured run.
    pub force_us: HistogramSnapshot,
}

/// Runs the sweep over updates-per-transaction.
pub fn run() -> Table {
    let mut t = Table::new(
        "E1 commit cost per transaction (steady state, 1 client)",
        &[
            "updates/txn",
            "cbl msgs",
            "cbl net bytes",
            "cbl forces",
            "cbl force p50us",
            "cbl force p95us",
            "cbl force p99us",
            "csa msgs",
            "csa net bytes",
            "csa server forces",
        ],
    );
    for k in [1usize, 2, 4, 8, 16, 32] {
        let cbl = run_cbl(k);
        let (csa_m, csa_b, csa_f) = run_csa(k);
        t.row(vec![
            k.to_string(),
            f(cbl.msgs),
            f(cbl.bytes),
            f(cbl.forces),
            cbl.force_us.p50().to_string(),
            cbl.force_us.p95().to_string(),
            cbl.force_us.p99().to_string(),
            f(csa_m),
            f(csa_b),
            f(csa_f),
        ]);
    }
    t
}

fn run_cbl(updates: usize) -> CblCommitCost {
    let mut c = cbl_cluster(1, 4, 16);
    let client = NodeId(1);
    let pages = pages0(4);
    // Warm up: cache pages + X locks.
    let t = c.begin(client).unwrap();
    for p in &pages {
        c.write_u64(t, *p, 0, 1).unwrap();
    }
    c.commit(t).unwrap();
    let s0 = c.network().stats();
    let f0 = c.node(client).log().forces();
    let h0 = c
        .node(client)
        .registry()
        .histogram(keys::WAL_COMMIT_FORCE_US)
        .snapshot();
    for i in 0..TXNS {
        let t = c.begin(client).unwrap();
        for u in 0..updates {
            let p = pages[u % pages.len()];
            c.write_u64(t, p, u % 8, i * 100 + u as u64).unwrap();
        }
        c.commit(t).unwrap();
    }
    let d = c.network().stats().since(&s0);
    let forces = c.node(client).log().forces() - f0;
    let force_us = c
        .node(client)
        .registry()
        .histogram(keys::WAL_COMMIT_FORCE_US)
        .snapshot()
        .since(&h0);
    CblCommitCost {
        msgs: d.total_messages() as f64 / TXNS as f64,
        bytes: d.total_bytes() as f64 / TXNS as f64,
        forces: forces as f64 / TXNS as f64,
        force_us,
    }
}

/// One point of the group-commit sweep.
pub struct GroupCommitPoint {
    /// Concurrently committing transactions per round.
    pub mpl: usize,
    /// Group-commit window (0 = immediate; for adaptive policies this
    /// is the configured maximum, see `live_window_us` for the actual).
    pub window_us: u64,
    /// Log forces per committed transaction.
    pub forces_per_commit: f64,
    /// Network messages per committed transaction.
    pub msgs_per_commit: f64,
    /// Mean transactions acknowledged per force.
    pub mean_group: f64,
    /// Final `wal/window_us` gauge reading — the window the scheduler
    /// was actually running at the end of the sweep.
    pub live_window_us: i64,
}

/// MPL × window sweep: `mpl` transactions on one client run
/// concurrently (disjoint pages, so the commit pipeline — not lock
/// contention — is what batches them) and commit through
/// `commit_submit`/`poll_committed`/`pump_commits`. With a nonzero
/// window a single force acknowledges the whole group.
pub fn run_group_commit() -> Table {
    let mut t = Table::new(
        "E1b group commit: forces per commit (MPL × window, 1 client)",
        &[
            "mpl",
            "window us",
            "forces/commit",
            "mean group size",
            "msgs/commit",
        ],
    );
    for mpl in [1usize, 2, 4, 8] {
        for window_us in [0u64, 500, 5_000] {
            let p = run_group_commit_point(mpl, window_us);
            t.row(vec![
                p.mpl.to_string(),
                p.window_us.to_string(),
                f(p.forces_per_commit),
                f(p.mean_group),
                f(p.msgs_per_commit),
            ]);
        }
    }
    t
}

/// Runs `ROUNDS` rounds of `mpl` concurrent single-page transactions
/// under the given window (0 = today's immediate force-per-commit).
pub fn run_group_commit_point(mpl: usize, window_us: u64) -> GroupCommitPoint {
    let policy = if window_us == 0 {
        GroupCommitPolicy::Immediate
    } else {
        GroupCommitPolicy::Window {
            window_us,
            max_batch: mpl.max(2),
        }
    };
    run_policy_point(mpl, policy)
}

/// As [`run_group_commit_point`] for an arbitrary policy — the E1c
/// adaptive sweep reuses the identical workload so its points are
/// directly comparable with the static-window grid.
pub fn run_policy_point(mpl: usize, policy: GroupCommitPolicy) -> GroupCommitPoint {
    const ROUNDS: u64 = 50;
    let window_us = match policy {
        GroupCommitPolicy::Immediate => 0,
        GroupCommitPolicy::Window { window_us, .. } => window_us,
        GroupCommitPolicy::Adaptive { max_window_us, .. } => max_window_us,
    };
    let mut c = cbl_cluster_gc(1, mpl.max(4) as u32, 64, policy);
    let client = NodeId(1);
    let pages = pages0(mpl as u32);
    // Warm up: cache pages + X locks.
    let t = c.begin(client).unwrap();
    for p in &pages {
        c.write_u64(t, *p, 0, 1).unwrap();
    }
    c.commit(t).unwrap();
    let s0 = c.network().stats();
    let f0 = c.node(client).log().forces();
    let g0 = c
        .node(client)
        .registry()
        .histogram(keys::WAL_GROUP_SIZE)
        .snapshot();
    for r in 0..ROUNDS {
        // mpl transactions each update their own page, then all submit
        // before anyone waits for durability.
        let txns: Vec<TxnId> = (0..mpl)
            .map(|i| {
                let t = c.begin(client).unwrap();
                c.write_u64(t, pages[i], 0, r * 1_000 + i as u64).unwrap();
                t
            })
            .collect();
        for &t in &txns {
            c.commit_submit(t).unwrap();
        }
        loop {
            let mut all = true;
            for &t in &txns {
                if !c.poll_committed(t).unwrap() {
                    all = false;
                }
            }
            if all {
                break;
            }
            c.pump_commits().unwrap();
        }
    }
    let commits = ROUNDS * mpl as u64;
    let d = c.network().stats().since(&s0);
    let forces = c.node(client).log().forces() - f0;
    let groups = c
        .node(client)
        .registry()
        .histogram(keys::WAL_GROUP_SIZE)
        .snapshot()
        .since(&g0);
    let live_window_us = c.node(client).registry().gauge(keys::WAL_WINDOW_US).get();
    GroupCommitPoint {
        mpl,
        window_us,
        forces_per_commit: forces as f64 / commits as f64,
        msgs_per_commit: d.total_messages() as f64 / commits as f64,
        mean_group: groups.mean(),
        live_window_us,
    }
}

fn run_csa(updates: usize) -> (f64, f64, f64) {
    let mut s = csa_cluster(1, 4, 16);
    let client = NodeId(1);
    let pages = pages0(4);
    let t = s.begin(client).unwrap();
    for p in &pages {
        s.write_u64(t, *p, 0, 1).unwrap();
    }
    s.commit(t).unwrap();
    let s0 = s.network().stats();
    let f0 = s.server_log().forces();
    for i in 0..TXNS {
        let t = s.begin(client).unwrap();
        for u in 0..updates {
            let p = pages[u % pages.len()];
            s.write_u64(t, p, u % 8, i * 100 + u as u64).unwrap();
        }
        s.commit(t).unwrap();
    }
    let d = s.network().stats().since(&s0);
    let forces = s.server_log().forces() - f0;
    (
        d.total_messages() as f64 / TXNS as f64,
        d.total_bytes() as f64 / TXNS as f64,
        forces as f64 / TXNS as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbl_commits_with_zero_messages_csa_pays_round_trip() {
        let cbl = run_cbl(4);
        let (csa_m, csa_b, _csa_f) = run_csa(4);
        assert_eq!(cbl.msgs, 0.0, "CBL steady-state commit is message-free");
        assert_eq!(cbl.bytes, 0.0);
        assert!(
            (cbl.forces - 1.0).abs() < 1e-9,
            "one local force per commit"
        );
        assert!(csa_m >= 3.0, "log-ship + commit-req + ack");
        assert!(csa_b > 0.0);
    }

    #[test]
    fn commit_force_histogram_covers_every_commit() {
        let cbl = run_cbl(4);
        assert_eq!(cbl.force_us.count, TXNS, "one recorded force per commit");
        assert!(cbl.force_us.p50() > 0, "force latency is non-zero sim-time");
        assert!(cbl.force_us.p99() >= cbl.force_us.p50());
    }

    #[test]
    fn csa_bytes_grow_with_update_count() {
        let (_, b1, _) = run_csa(1);
        let (_, b32, _) = run_csa(32);
        assert!(b32 > 4.0 * b1, "shipped log bytes scale with updates");
    }

    #[test]
    fn table_has_six_rows() {
        let t = run();
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn group_commit_amortizes_forces_without_messages() {
        let p = run_group_commit_point(4, 5_000);
        assert!(
            p.forces_per_commit < 1.0,
            "MPL 4 with a window shares forces: {}",
            p.forces_per_commit
        );
        assert!(p.mean_group > 1.0, "groups really form: {}", p.mean_group);
        assert_eq!(p.msgs_per_commit, 0.0, "commit stays message-free");
    }

    #[test]
    fn immediate_mode_reproduces_one_force_per_commit() {
        let p = run_group_commit_point(4, 0);
        assert!(
            (p.forces_per_commit - 1.0).abs() < 1e-9,
            "immediate = today's behavior: {}",
            p.forces_per_commit
        );
        assert_eq!(p.msgs_per_commit, 0.0);
    }

    #[test]
    fn deeper_mpl_amortizes_further() {
        let p2 = run_group_commit_point(2, 5_000);
        let p8 = run_group_commit_point(8, 5_000);
        assert!(
            p8.forces_per_commit < p2.forces_per_commit,
            "more concurrent commits per force: {} vs {}",
            p8.forces_per_commit,
            p2.forces_per_commit
        );
    }

    #[test]
    fn group_commit_table_has_all_sweep_rows() {
        let t = run_group_commit();
        assert_eq!(t.len(), 12);
    }
}
