//! E1 — commit-time cost.
//!
//! Paper §1.1: "Local logging eliminates the need to send log records
//! to remote nodes during transaction execution and at transaction
//! commit." Steady state (locks and pages cached), one client updating
//! its working set: client-based logging commits with zero messages
//! and one local force; server logging ships its records and pays a
//! server round trip plus a server force per commit.

use super::{cbl_cluster, csa_cluster, pages0};
use crate::report::{f, Table};
use cblog_common::{HistogramSnapshot, NodeId};

const TXNS: u64 = 100;

/// Per-transaction commit costs of the CBL client, including the
/// commit-force latency distribution from the client's metrics
/// registry.
pub struct CblCommitCost {
    /// Messages per transaction.
    pub msgs: f64,
    /// Network bytes per transaction.
    pub bytes: f64,
    /// Log forces per transaction.
    pub forces: f64,
    /// `wal/commit_force_us` distribution over the measured run.
    pub force_us: HistogramSnapshot,
}

/// Runs the sweep over updates-per-transaction.
pub fn run() -> Table {
    let mut t = Table::new(
        "E1 commit cost per transaction (steady state, 1 client)",
        &[
            "updates/txn",
            "cbl msgs",
            "cbl net bytes",
            "cbl forces",
            "cbl force p50us",
            "cbl force p95us",
            "cbl force p99us",
            "csa msgs",
            "csa net bytes",
            "csa server forces",
        ],
    );
    for k in [1usize, 2, 4, 8, 16, 32] {
        let cbl = run_cbl(k);
        let (csa_m, csa_b, csa_f) = run_csa(k);
        t.row(vec![
            k.to_string(),
            f(cbl.msgs),
            f(cbl.bytes),
            f(cbl.forces),
            cbl.force_us.p50().to_string(),
            cbl.force_us.p95().to_string(),
            cbl.force_us.p99().to_string(),
            f(csa_m),
            f(csa_b),
            f(csa_f),
        ]);
    }
    t
}

fn run_cbl(updates: usize) -> CblCommitCost {
    let mut c = cbl_cluster(1, 4, 16);
    let client = NodeId(1);
    let pages = pages0(4);
    // Warm up: cache pages + X locks.
    let t = c.begin(client).unwrap();
    for p in &pages {
        c.write_u64(t, *p, 0, 1).unwrap();
    }
    c.commit(t).unwrap();
    let s0 = c.network().stats();
    let f0 = c.node(client).log().forces();
    let h0 = c
        .node(client)
        .registry()
        .histogram("wal/commit_force_us")
        .snapshot();
    for i in 0..TXNS {
        let t = c.begin(client).unwrap();
        for u in 0..updates {
            let p = pages[u % pages.len()];
            c.write_u64(t, p, u % 8, i * 100 + u as u64).unwrap();
        }
        c.commit(t).unwrap();
    }
    let d = c.network().stats().since(&s0);
    let forces = c.node(client).log().forces() - f0;
    let force_us = c
        .node(client)
        .registry()
        .histogram("wal/commit_force_us")
        .snapshot()
        .since(&h0);
    CblCommitCost {
        msgs: d.total_messages() as f64 / TXNS as f64,
        bytes: d.total_bytes() as f64 / TXNS as f64,
        forces: forces as f64 / TXNS as f64,
        force_us,
    }
}

fn run_csa(updates: usize) -> (f64, f64, f64) {
    let mut s = csa_cluster(1, 4, 16);
    let client = NodeId(1);
    let pages = pages0(4);
    let t = s.begin(client).unwrap();
    for p in &pages {
        s.write_u64(t, *p, 0, 1).unwrap();
    }
    s.commit(t).unwrap();
    let s0 = s.network().stats();
    let f0 = s.server_log().forces();
    for i in 0..TXNS {
        let t = s.begin(client).unwrap();
        for u in 0..updates {
            let p = pages[u % pages.len()];
            s.write_u64(t, p, u % 8, i * 100 + u as u64).unwrap();
        }
        s.commit(t).unwrap();
    }
    let d = s.network().stats().since(&s0);
    let forces = s.server_log().forces() - f0;
    (
        d.total_messages() as f64 / TXNS as f64,
        d.total_bytes() as f64 / TXNS as f64,
        forces as f64 / TXNS as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbl_commits_with_zero_messages_csa_pays_round_trip() {
        let cbl = run_cbl(4);
        let (csa_m, csa_b, _csa_f) = run_csa(4);
        assert_eq!(cbl.msgs, 0.0, "CBL steady-state commit is message-free");
        assert_eq!(cbl.bytes, 0.0);
        assert!(
            (cbl.forces - 1.0).abs() < 1e-9,
            "one local force per commit"
        );
        assert!(csa_m >= 3.0, "log-ship + commit-req + ack");
        assert!(csa_b > 0.0);
    }

    #[test]
    fn commit_force_histogram_covers_every_commit() {
        let cbl = run_cbl(4);
        assert_eq!(cbl.force_us.count, TXNS, "one recorded force per commit");
        assert!(cbl.force_us.p50() > 0, "force latency is non-zero sim-time");
        assert!(cbl.force_us.p99() >= cbl.force_us.p50());
    }

    #[test]
    fn csa_bytes_grow_with_update_count() {
        let (_, b1, _) = run_csa(1);
        let (_, b32, _) = run_csa(32);
        assert!(b32 > 4.0 * b1, "shipped log bytes scale with updates");
    }

    #[test]
    fn table_has_six_rows() {
        let t = run();
        assert_eq!(t.len(), 6);
    }
}
