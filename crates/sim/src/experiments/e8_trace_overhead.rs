//! E8b — tracing overhead.
//!
//! The causal tracer is an observer: it charges no sim-time and draws
//! no randomness. Its only accounted effect is the 16-byte span
//! context each protocol message carries while tracing is on. This
//! experiment runs the same E1-style multi-client workload with
//! tracing off and on and reports the deltas — the off row must be
//! bit-identical to the pre-tracing seed (same messages, bytes,
//! sim-time), and the on row may differ only by header bytes.

use super::{cbl_builder, pages0};
use crate::driver::run_workload;
use crate::report::{f, Table};
use crate::workload::{generate, WorkloadConfig};
use cblog_common::NodeId;
use cblog_core::Cluster;

const CLIENTS: usize = 4;

/// One measured run (tracing off or on).
pub struct OverheadRow {
    /// Was the tracer enabled?
    pub traced: bool,
    /// Committed transactions.
    pub committed: u64,
    /// Total simulated time, µs.
    pub sim_us: u64,
    /// Total protocol messages.
    pub msgs: u64,
    /// Total network bytes (headers included).
    pub bytes: u64,
    /// Spans retained by the tracer (0 when off).
    pub spans: usize,
    /// Spans dropped past the capacity bound.
    pub dropped: u64,
}

/// Runs the workload with tracing `traced` and returns the accounting.
pub fn run_one(traced: bool) -> OverheadRow {
    let mut c = Cluster::new(cbl_builder(CLIENTS, 8, 16).tracing(traced).build())
        .expect("cluster config valid");
    let cfg = WorkloadConfig {
        txns_per_client: 25,
        ops_per_txn: 4,
        write_ratio: 0.7,
        seed: 11,
        ..WorkloadConfig::default()
    };
    let ids: Vec<NodeId> = (1..=CLIENTS as u32).map(NodeId).collect();
    let specs = generate(&cfg, &ids, &pages0(8), None);
    let stats = run_workload(&mut c, specs).expect("workload");
    OverheadRow {
        traced,
        committed: stats.committed,
        sim_us: stats.sim_time,
        msgs: stats.net.total_messages(),
        bytes: stats.net.total_bytes(),
        spans: c.tracer().len(),
        dropped: c.tracer().dropped(),
    }
}

/// The off/on comparison table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E8b trace overhead (same workload, tracing off vs on)",
        &[
            "tracing",
            "committed",
            "sim ms",
            "msgs",
            "net bytes",
            "spans",
            "sim overhead %",
            "byte overhead %",
        ],
    );
    let off = run_one(false);
    let on = run_one(true);
    let pct = |a: u64, b: u64| {
        if b == 0 {
            0.0
        } else {
            (a as f64 - b as f64) * 100.0 / b as f64
        }
    };
    for row in [&off, &on] {
        t.row(vec![
            if row.traced { "on" } else { "off" }.to_string(),
            row.committed.to_string(),
            f(row.sim_us as f64 / 1000.0),
            row.msgs.to_string(),
            row.bytes.to_string(),
            row.spans.to_string(),
            f(pct(row.sim_us, off.sim_us)),
            f(pct(row.bytes, off.bytes)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracing_off_is_free_and_deterministic() {
        let a = run_one(false);
        let b = run_one(false);
        assert_eq!(a.sim_us, b.sim_us, "untraced runs are bit-identical");
        assert_eq!(a.msgs, b.msgs);
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.spans, 0, "disabled tracer records nothing");
        assert_eq!(a.dropped, 0);
    }

    #[test]
    fn tracing_on_changes_only_header_bytes() {
        let off = run_one(false);
        let on = run_one(true);
        assert_eq!(on.committed, off.committed, "same outcome");
        assert_eq!(on.msgs, off.msgs, "tracing sends no extra messages");
        assert!(on.spans > 0, "spans recorded");
        assert!(
            on.bytes >= off.bytes,
            "traced messages carry the 16B span context"
        );
        let extra = on.bytes - off.bytes;
        assert_eq!(extra % 16, 0, "delta is whole headers: {extra}");
        // Acceptance bound from the issue: well under 2% in sim-time.
        let overhead = (on.sim_us as f64 - off.sim_us as f64) / off.sim_us as f64;
        assert!(
            overhead.abs() < 0.02,
            "trace overhead {:.3}% exceeds 2%",
            overhead * 100.0
        );
    }

    #[test]
    fn table_has_off_and_on_rows() {
        let t = run();
        assert_eq!(t.len(), 2);
        let json = t.to_json();
        assert!(json.contains("sim overhead %"));
    }
}
