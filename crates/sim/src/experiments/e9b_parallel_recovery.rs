//! E9b — parallel dependency-aware replay vs the serial protocol.
//!
//! The Redo pass of recovery is planned as a PSN-interval dependency
//! graph ([`cblog_core::plan_replay`], DESIGN §13): per-page chains
//! are always ordered, but distinct pages are only ordered where a
//! multi-page transaction links them. The planner's wave schedule
//! replays independent pages concurrently; this experiment measures
//! what that buys on the two crash shapes the recovery suite already
//! studies — E5 (single owner, many independent dirty pages) and E6
//! (simultaneous multi-node crashes with cross-page transactions) —
//! at 1..8 replay workers.
//!
//! Everything but the speedup column is deterministic: the plan
//! (pages, waves, critical-path PSN intervals) depends only on the
//! logs, and the simulated replay time only on the cost model, so the
//! baseline gate pins those cells exactly.

use super::{cbl_builder, e5_single_crash as e5, e6_multi_crash as e6};
use crate::report::{f, Table};
use cblog_common::NodeId;
use cblog_core::recovery::recover;
use cblog_core::{Cluster, RecoveryOptions, RecoveryReport, ReplayMode};

/// The worker counts swept per scenario (1 ≈ serial with overlap
/// bookkeeping; the paper's serial protocol is the `serial` row).
const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// One recovered scenario under one replay mode.
struct ModeRow {
    mode: String,
    rep: RecoveryReport,
}

/// Sweeps replay modes over the E5- and E6-shaped crashes.
pub fn run() -> Table {
    let mut t = Table::new(
        "E9b parallel replay: wave-scheduled redo vs serial protocol",
        &[
            "scenario",
            "mode",
            "pages",
            "waves",
            "crit path psns",
            "replay us",
            "total us",
            "speedup",
        ],
    );
    for (scenario, rows) in [
        ("e5 d=16", run_e5(16)),
        ("e6 3-crash", run_e6(&[NodeId(0), NodeId(1), NodeId(2)])),
    ] {
        let serial_us = rows[0].rep.timings.replay_us().max(1);
        for r in &rows {
            t.row(vec![
                scenario.to_string(),
                r.mode.clone(),
                r.rep.pages_recovered.to_string(),
                r.rep.replay_waves.to_string(),
                r.rep.critical_path_psns.to_string(),
                r.rep.timings.replay_us().to_string(),
                r.rep.timings.total_us().to_string(),
                f(serial_us as f64 / r.rep.timings.replay_us().max(1) as f64),
            ]);
        }
    }
    t
}

fn modes() -> Vec<(String, ReplayMode)> {
    let mut out = vec![("serial".to_string(), ReplayMode::Serial)];
    for w in WORKER_SWEEP {
        out.push((format!("par{w}"), ReplayMode::Parallel { workers: w }));
    }
    out
}

/// E5-shaped crash (`d` dirty pages on one owner) recovered under
/// every mode; each mode gets a fresh, identically-seeded cluster.
fn run_e5(d: u32) -> Vec<ModeRow> {
    modes()
        .into_iter()
        .map(|(mode, replay)| {
            let (clients, pages, frames) = e5::shape(d);
            let mut c = Cluster::new(cbl_builder(clients, pages, frames).build()).expect("config");
            e5::workload(&mut c, d);
            c.crash(NodeId(0));
            let rep = recover(&mut c, &RecoveryOptions::single(NodeId(0)).replay(replay))
                .expect("recovery");
            ModeRow { mode, rep }
        })
        .collect()
}

/// E6-shaped multi-crash recovered under every mode.
fn run_e6(which: &[NodeId]) -> Vec<ModeRow> {
    modes()
        .into_iter()
        .map(|(mode, replay)| {
            let mut c = Cluster::new(e6::builder().build()).expect("config");
            e6::workload_and_crash(&mut c, which);
            let rep =
                recover(&mut c, &RecoveryOptions::nodes(which).replay(replay)).expect("recovery");
            ModeRow { mode, rep }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_replay_beats_serial_on_independent_pages() {
        let rows = run_e5(16);
        let serial = rows[0].rep.timings.replay_us();
        let par4 = &rows[3];
        assert_eq!(par4.mode, "par4");
        assert!(
            par4.rep.timings.replay_us() < serial,
            "4 workers over 16 independent pages must overlap: {} !< {}",
            par4.rep.timings.replay_us(),
            serial
        );
        // Work is conserved: same pages, same records, whatever the mode.
        for r in &rows {
            assert_eq!(r.rep.pages_recovered, rows[0].rep.pages_recovered);
            assert_eq!(r.rep.records_replayed, rows[0].rep.records_replayed);
        }
    }

    #[test]
    fn wave_plan_is_deterministic_across_modes() {
        let rows = run_e6(&[NodeId(0), NodeId(1), NodeId(2)]);
        for r in &rows {
            assert_eq!(r.rep.replay_waves, rows[0].rep.replay_waves);
            assert_eq!(r.rep.critical_path_psns, rows[0].rep.critical_path_psns);
        }
        // Parallel rows carry the per-wave split; serial rows do not.
        assert!(rows[0].rep.timings.replay_waves().is_empty());
        assert_eq!(
            rows[1].rep.timings.replay_waves().len(),
            rows[1].rep.replay_waves
        );
    }
}
