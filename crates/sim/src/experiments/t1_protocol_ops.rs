//! T1 — message counts of the canonical §2.2 protocol operations.
//!
//! The normal-processing protocol, one row per primitive: cold read
//! (lock + page ship), warm read (nothing), exclusive upgrade with
//! 0/1/2 remote sharers (callbacks), steady-state commit (nothing) and
//! abort (nothing).

use super::{cbl_cluster, pages0};
use crate::report::Table;
use cblog_common::NodeId;

/// Builds the canonical-operation table.
pub fn run() -> Table {
    let mut t = Table::new(
        "T1 protocol message counts per canonical operation (CBL)",
        &["operation", "messages", "of which callbacks"],
    );
    for (name, msgs, cbs) in [
        op_cold_read(),
        op_warm_read(),
        op_upgrade(0),
        op_upgrade(1),
        op_upgrade(2),
        op_commit(),
        op_abort(),
    ] {
        t.row(vec![name, msgs.to_string(), cbs.to_string()]);
    }
    t
}

fn op_cold_read() -> (String, u64, u64) {
    let mut c = cbl_cluster(1, 2, 8);
    let p = pages0(1)[0];
    let t = c.begin(NodeId(1)).unwrap();
    let s0 = c.network().stats();
    c.read_u64(t, p, 0).unwrap();
    let d = c.network().stats().since(&s0);
    c.commit(t).unwrap();
    ("cold read (miss both)".into(), d.total_messages(), 0)
}

fn op_warm_read() -> (String, u64, u64) {
    let mut c = cbl_cluster(1, 2, 8);
    let p = pages0(1)[0];
    let t0 = c.begin(NodeId(1)).unwrap();
    c.read_u64(t0, p, 0).unwrap();
    c.commit(t0).unwrap();
    let t = c.begin(NodeId(1)).unwrap();
    let s0 = c.network().stats();
    c.read_u64(t, p, 0).unwrap();
    let d = c.network().stats().since(&s0);
    c.commit(t).unwrap();
    ("warm read (cached)".into(), d.total_messages(), 0)
}

fn op_upgrade(sharers: u32) -> (String, u64, u64) {
    let mut c = cbl_cluster(sharers as usize + 1, 2, 8);
    let p = pages0(1)[0];
    // The upgrading client reads first (S cached), as do the sharers.
    let me = NodeId(1);
    let t0 = c.begin(me).unwrap();
    c.read_u64(t0, p, 0).unwrap();
    c.commit(t0).unwrap();
    for s in 0..sharers {
        let n = NodeId(2 + s);
        let t = c.begin(n).unwrap();
        c.read_u64(t, p, 0).unwrap();
        c.commit(t).unwrap();
    }
    let t = c.begin(me).unwrap();
    let s0 = c.network().stats();
    c.write_u64(t, p, 0, 9).unwrap();
    let d = c.network().stats().since(&s0);
    c.commit(t).unwrap();
    (
        format!("S->X upgrade, {sharers} remote sharers"),
        d.total_messages(),
        d.count(cblog_net::MsgKind::Callback),
    )
}

fn op_commit() -> (String, u64, u64) {
    let mut c = cbl_cluster(1, 2, 8);
    let p = pages0(1)[0];
    let t = c.begin(NodeId(1)).unwrap();
    c.write_u64(t, p, 0, 1).unwrap();
    let s0 = c.network().stats();
    c.commit(t).unwrap();
    let d = c.network().stats().since(&s0);
    ("commit (after updates)".into(), d.total_messages(), 0)
}

fn op_abort() -> (String, u64, u64) {
    let mut c = cbl_cluster(1, 2, 8);
    let p = pages0(1)[0];
    let t = c.begin(NodeId(1)).unwrap();
    c.write_u64(t, p, 0, 1).unwrap();
    let s0 = c.network().stats();
    c.abort(t).unwrap();
    let d = c.network().stats().since(&s0);
    ("abort (page cached)".into(), d.total_messages(), 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_counts_match_the_protocol() {
        let (_, cold, _) = op_cold_read();
        assert_eq!(cold, 3, "lock-req + grant + page-ship");
        let (_, warm, _) = op_warm_read();
        assert_eq!(warm, 0);
        let (_, up0, cb0) = op_upgrade(0);
        assert_eq!((up0, cb0), (2, 0), "lock-req + grant, no page (cached)");
        let (_, up2, cb2) = op_upgrade(2);
        assert_eq!(cb2, 2, "one callback per sharer");
        assert!(up2 >= 6, "req + grant + 2x(callback + ack)");
        let (_, commit, _) = op_commit();
        assert_eq!(commit, 0, "the paper's headline");
        let (_, abort, _) = op_abort();
        assert_eq!(abort, 0, "rollback is local");
    }
}
