//! E7 — checkpoint independence.
//!
//! Paper §4 contribution (4): "each node can take a checkpoint without
//! synchronizing with the rest of the operational nodes"; §3.1 notes
//! that ARIES/CSA "server checkpointing requires communication with
//! all connected clients". We take one checkpoint per system after an
//! identical warm workload and count the messages it needs.

use super::{cbl_cluster, csa_cluster, pages0};
use crate::driver::run_workload;
use crate::report::{f, Table};
use crate::workload::{generate, WorkloadConfig};
use cblog_common::NodeId;

/// Sweeps the number of clients.
pub fn run() -> Table {
    let mut t = Table::new(
        "E7 checkpoint cost (messages + bytes) vs connected clients",
        &[
            "clients",
            "cbl ckpt msgs",
            "cbl ckpt bytes",
            "csa ckpt msgs",
            "csa ckpt bytes",
        ],
    );
    for clients in [1usize, 2, 4, 8, 16] {
        let (a, b) = run_cbl(clients);
        let (c, d) = run_csa(clients);
        t.row(vec![clients.to_string(), f(a), f(b), f(c), f(d)]);
    }
    t
}

pub(crate) fn warm(clients: usize) -> Vec<crate::workload::TxnSpec> {
    let cfg = WorkloadConfig {
        txns_per_client: 10,
        ops_per_txn: 4,
        write_ratio: 1.0,
        seed: 5,
        ..WorkloadConfig::default()
    };
    let ids: Vec<NodeId> = (1..=clients as u32).map(NodeId).collect();
    generate(&cfg, &ids, &pages0(8), None)
}

fn run_cbl(clients: usize) -> (f64, f64) {
    let mut c = cbl_cluster(clients, 8, 16);
    run_workload(&mut c, warm(clients)).expect("warm");
    let s0 = c.network().stats();
    // Every node checkpoints — still zero messages.
    for n in 0..=clients as u32 {
        c.checkpoint(NodeId(n)).unwrap();
    }
    let d = c.network().stats().since(&s0);
    (d.total_messages() as f64, d.total_bytes() as f64)
}

fn run_csa(clients: usize) -> (f64, f64) {
    let mut s = csa_cluster(clients, 8, 16);
    run_workload(&mut s, warm(clients)).expect("warm");
    let s0 = s.network().stats();
    s.checkpoint().unwrap();
    let d = s.network().stats().since(&s0);
    (d.total_messages() as f64, d.total_bytes() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbl_checkpoints_send_nothing() {
        let (msgs, bytes) = run_cbl(4);
        assert_eq!(msgs, 0.0);
        assert_eq!(bytes, 0.0);
    }

    #[test]
    fn csa_checkpoint_messages_scale_with_clients() {
        let (m2, _) = run_csa(2);
        let (m8, _) = run_csa(8);
        assert_eq!(m2, 4.0, "round trip per client");
        assert_eq!(m8, 16.0);
    }
}
