//! E7 — fault injection: unreliable network and torn log tails.
//!
//! The paper assumes reliable delivery and atomic log forces; this
//! experiment measures what the protocols pay to *provide* those
//! assumptions on faulty hardware. A seeded [`FaultPlan`] drops,
//! delays, duplicates and reorders messages, and tears the unsynced
//! log tail at crash time. Bounded retries mask message loss; checksum
//! tail-repair discards the torn suffix at restart. The sweep reports,
//! per fault probability, the workload overhead (retries), the crash
//! damage (torn bytes) and the recovery bill (messages, sim-time) —
//! with the committed state oracle-verified end to end.

use super::{cbl_cluster_faults, pages0};
use crate::driver::run_workload;
use crate::report::Table;
use crate::workload::{generate, WorkloadConfig};
use cblog_common::NodeId;
use cblog_core::recovery::recover;
use cblog_core::{FaultPlan, RecoveryOptions};

const CLIENTS: usize = 2;
const PAGES: u32 = 8;

/// Sweeps the fault probability.
pub fn run() -> Table {
    let mut t = Table::new(
        "E7 faults: loss/tear probability vs recovery time and message overhead",
        &[
            "fault prob",
            "committed",
            "drops",
            "retries",
            "torn bytes",
            "rec messages",
            "rec retries",
            "rec time us",
            "verified slots",
        ],
    );
    for (i, p) in [0.0f64, 0.01, 0.05, 0.1, 0.2].into_iter().enumerate() {
        let row = run_one(p, 0xE7 + i as u64);
        t.row(vec![
            format!("{p:.2}"),
            row.committed.to_string(),
            row.drops.to_string(),
            row.retries.to_string(),
            row.torn_bytes.to_string(),
            row.rec_messages.to_string(),
            row.rec_retries.to_string(),
            row.rec_time_us.to_string(),
            row.verified.to_string(),
        ]);
    }
    t
}

/// One measured run at fault probability `p`.
pub struct FaultRow {
    /// Transactions committed (all of them — faults never lose one).
    pub committed: u64,
    /// Messages the injector dropped across the whole run.
    pub drops: u64,
    /// Reliable-send retries during the workload.
    pub retries: u64,
    /// Torn log-tail bytes discarded by checksum repair at restart.
    pub torn_bytes: u64,
    /// Messages exchanged by the recovery protocol.
    pub rec_messages: u64,
    /// Reliable-send retries during recovery.
    pub rec_retries: u64,
    /// Simulated recovery time (sum over protocol phases), µs.
    pub rec_time_us: u64,
    /// Slots the committed-state oracle verified after recovery.
    pub verified: usize,
}

/// Workload under faults → owner crash (torn tail possible) →
/// recovery under faults → oracle verification.
pub fn run_one(p: f64, seed: u64) -> FaultRow {
    let plan = FaultPlan::new(seed)
        .with_drop(p)
        .with_delay(p, 150)
        .with_duplicate(p / 2.0)
        .with_reorder(p / 2.0)
        .with_tear(if p > 0.0 { 1.0 } else { 0.0 });
    let mut c = cbl_cluster_faults(CLIENTS, PAGES, 16, plan);
    let cfg = WorkloadConfig {
        txns_per_client: 30,
        ops_per_txn: 4,
        write_ratio: 0.8,
        seed: 0x5EED ^ seed,
        ..WorkloadConfig::default()
    };
    let clients: Vec<NodeId> = (1..=CLIENTS as u32).map(NodeId).collect();
    let specs = generate(&cfg, &clients, &pages0(PAGES), None);
    let stats = run_workload(&mut c, specs).expect("workload survives faults");
    // Leave an uncommitted update in the owner's unsynced tail so the
    // tear has live bytes to bite; its transaction is a loser either
    // way, so recovery discards it torn or not.
    let loser = c.begin(NodeId(0)).unwrap();
    c.write_u64(loser, pages0(PAGES)[0], 7, 0xDEAD).unwrap();
    let retries = stats.faults.retries;
    c.crash(NodeId(0));
    let rep = recover(&mut c, &RecoveryOptions::single(NodeId(0))).expect("recovery");
    let after = c.network().fault_stats();
    let verified = stats.oracle.verify(&mut c, NodeId(1)).expect("oracle");
    FaultRow {
        committed: stats.committed,
        drops: after.dropped,
        retries,
        torn_bytes: rep.torn_bytes_discarded,
        rec_messages: rep.messages,
        rec_retries: after.retries.saturating_sub(retries),
        rec_time_us: rep.timings.total_us(),
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faultless_run_has_zero_overhead() {
        let row = run_one(0.0, 1);
        assert_eq!(row.committed, 60);
        assert_eq!(row.drops, 0);
        assert_eq!(row.retries, 0);
        assert_eq!(row.torn_bytes, 0);
        assert!(row.verified > 0);
    }

    #[test]
    fn lossy_run_commits_everything_and_verifies() {
        let row = run_one(0.1, 2);
        assert_eq!(row.committed, 60, "faults never lose a commit");
        assert!(row.drops > 0, "injector actually fired");
        assert!(row.retries > 0, "drops were masked by retries");
        assert!(row.verified > 0);
    }

    #[test]
    fn lossy_recovery_costs_more_messages_than_clean() {
        let clean = run_one(0.0, 3);
        let lossy = run_one(0.2, 3);
        assert!(
            lossy.rec_messages + lossy.rec_retries >= clean.rec_messages,
            "retransmissions add message overhead: clean {} vs lossy {}+{}",
            clean.rec_messages,
            lossy.rec_messages,
            lossy.rec_retries
        );
    }
}
