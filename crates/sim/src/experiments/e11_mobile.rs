//! E11 — expensive links (the §1.2 mobile scenario).
//!
//! "…she may wish to achieve transactional durability guarantees for
//! orders recorded in the notebook computer without repeatedly having
//! to call the server in the central office. … the user chooses to
//! keep the log locally to minimize communication cost and save
//! energy."
//!
//! The same checked-out working set and commit stream run under
//! increasingly expensive links (LAN → WAN → cellular-ish). Client-
//! based logging's elapsed time is flat — after check-out it sends
//! nothing — while server logging degrades linearly with link cost.

use super::{pages0, PAGE_SIZE};
use crate::report::{f, Table};
use cblog_baselines::{ServerClientConfig, ServerCluster};
use cblog_common::{CostModel, NodeId};
use cblog_core::{Cluster, ClusterConfig, GroupCommitPolicy};

const TXNS: u64 = 50;

fn cost(mult: u64) -> CostModel {
    let base = CostModel::default();
    CostModel {
        msg_fixed_us: base.msg_fixed_us * mult,
        wire_us_per_kib: base.wire_us_per_kib * mult,
        ..base
    }
}

/// Sweeps the link-cost multiplier.
pub fn run() -> Table {
    let mut t = Table::new(
        "E11 mobile / expensive links: elapsed ms for 50 commits",
        &["link cost x", "cbl ms", "csa ms", "csa/cbl"],
    );
    for mult in [1u64, 10, 100, 1000] {
        let cbl = run_cbl(mult);
        let csa = run_csa(mult);
        t.row(vec![
            mult.to_string(),
            f(cbl),
            f(csa),
            f(csa / cbl.max(1e-9)),
        ]);
    }
    t
}

/// CBL elapsed milliseconds at one link-cost multiplier.
pub fn run_cbl(mult: u64) -> f64 {
    let mut c = Cluster::new(
        ClusterConfig::builder()
            .owned_pages(vec![4, 0])
            .page_size(PAGE_SIZE)
            .buffer_frames(16)
            .default_owned_pages(0)
            .cost(cost(mult))
            .build(),
    )
    .unwrap();
    let pages = pages0(4);
    // Morning check-out (paid once).
    let t = c.begin(NodeId(1)).unwrap();
    for p in &pages {
        c.write_u64(t, *p, 0, 1).unwrap();
    }
    c.commit(t).unwrap();
    let t0 = c.network().clock().now();
    for i in 0..TXNS {
        let t = c.begin(NodeId(1)).unwrap();
        c.write_u64(t, pages[(i % 4) as usize], 1, i).unwrap();
        c.commit(t).unwrap();
    }
    (c.network().clock().now() - t0) as f64 / 1000.0
}

/// Server-logging elapsed milliseconds at one multiplier.
pub fn run_csa(mult: u64) -> f64 {
    let mut s = ServerCluster::new(ServerClientConfig {
        clients: 1,
        pages: 4,
        page_size: PAGE_SIZE,
        client_buffer_frames: 16,
        server_buffer_frames: 32,
        cost: cost(mult),
        group_commit: GroupCommitPolicy::Immediate,
    })
    .unwrap();
    let pages = pages0(4);
    let t = s.begin(NodeId(1)).unwrap();
    for p in &pages {
        s.write_u64(t, *p, 0, 1).unwrap();
    }
    s.commit(t).unwrap();
    let t0 = s.network().clock().now();
    for i in 0..TXNS {
        let t = s.begin(NodeId(1)).unwrap();
        s.write_u64(t, pages[(i % 4) as usize], 1, i).unwrap();
        s.commit(t).unwrap();
    }
    (s.network().clock().now() - t0) as f64 / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbl_is_flat_csa_degrades_with_link_cost() {
        let cbl_lan = run_cbl(1);
        let cbl_wan = run_cbl(1000);
        let csa_lan = run_csa(1);
        let csa_wan = run_csa(1000);
        assert!(
            (cbl_wan - cbl_lan).abs() < 1e-9,
            "CBL commits send nothing, so link cost is irrelevant: {cbl_lan} vs {cbl_wan}"
        );
        assert!(
            csa_wan > 50.0 * csa_lan,
            "CSA pays the link on every commit: {csa_lan} vs {csa_wan}"
        );
        assert!(csa_wan / cbl_wan > 100.0);
    }
}
