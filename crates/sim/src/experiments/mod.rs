//! The experiment suite (see DESIGN.md §4 for the claim → experiment
//! mapping). Every experiment returns a [`Table`] whose rows are the
//! series the harness reports; `EXPERIMENTS.md` embeds them next to
//! the paper's qualitative claims.

pub mod a1_ckpt_interval;
pub mod e10_pca;
pub mod e11_mobile;
pub mod e1_commit_cost;
pub mod e1c_adaptive;
pub mod e2_scalability;
pub mod e3_log_volume;
pub mod e4_page_transfer;
pub mod e5_single_crash;
pub mod e6_multi_crash;
pub mod e7_checkpoint;
pub mod e7_faults;
pub mod e8_log_space;
pub mod e8_trace_overhead;
pub mod e9_rollback;
pub mod e9b_parallel_recovery;
pub mod t1_protocol_ops;

use crate::report::Table;
use cblog_baselines::{ServerClientConfig, ServerCluster};
use cblog_common::{CostModel, NodeId, PageId};
use cblog_core::{Cluster, ClusterConfig, ClusterConfigBuilder, FaultPlan, GroupCommitPolicy};

/// Standard page size used by the experiments.
pub const PAGE_SIZE: usize = 1024;

/// Builds a client-based-logging cluster: node 0 owns `pages`;
/// `clients` diskless logging client nodes follow.
pub fn cbl_cluster(clients: usize, pages: u32, frames: usize) -> Cluster {
    cbl_cluster_opts(clients, pages, frames, None, false)
}

/// Partially-configured builder shared by every cbl cluster shape:
/// node 0 owns `pages`, `clients` diskless logging clients follow.
pub fn cbl_builder(clients: usize, pages: u32, frames: usize) -> ClusterConfigBuilder {
    let mut owned = vec![pages];
    owned.extend(std::iter::repeat(0).take(clients));
    ClusterConfig::builder()
        .owned_pages(owned)
        .page_size(PAGE_SIZE)
        .buffer_frames(frames)
        .default_owned_pages(0)
}

/// As [`cbl_cluster`] with a bounded log and/or force-on-transfer.
pub fn cbl_cluster_opts(
    clients: usize,
    pages: u32,
    frames: usize,
    log_capacity: Option<u64>,
    force_on_transfer: bool,
) -> Cluster {
    Cluster::new(
        cbl_builder(clients, pages, frames)
            .log_capacity(log_capacity)
            .force_on_transfer(force_on_transfer)
            .build(),
    )
    .expect("cluster config valid")
}

/// As [`cbl_cluster`] with a group-commit policy.
pub fn cbl_cluster_gc(
    clients: usize,
    pages: u32,
    frames: usize,
    group_commit: GroupCommitPolicy,
) -> Cluster {
    Cluster::new(
        cbl_builder(clients, pages, frames)
            .group_commit(group_commit)
            .build(),
    )
    .expect("cluster config valid")
}

/// As [`cbl_cluster`] with a fault-injection plan (experiment E7).
pub fn cbl_cluster_faults(clients: usize, pages: u32, frames: usize, plan: FaultPlan) -> Cluster {
    Cluster::new(cbl_builder(clients, pages, frames).faults(plan).build())
        .expect("cluster config valid")
}

/// Builds the ARIES/CSA server-logging baseline with matching shape.
pub fn csa_cluster(clients: usize, pages: u32, frames: usize) -> ServerCluster {
    csa_cluster_gc(clients, pages, frames, GroupCommitPolicy::Immediate)
}

/// As [`csa_cluster`] with a group-commit policy for the server log.
pub fn csa_cluster_gc(
    clients: usize,
    pages: u32,
    frames: usize,
    group_commit: GroupCommitPolicy,
) -> ServerCluster {
    ServerCluster::new(ServerClientConfig {
        clients,
        pages,
        page_size: PAGE_SIZE,
        client_buffer_frames: frames,
        server_buffer_frames: (pages as usize).max(frames) * 2,
        cost: CostModel::default(),
        group_commit,
    })
    .expect("server config valid")
}

/// Pages `0..count` of owner node 0.
pub fn pages0(count: u32) -> Vec<PageId> {
    (0..count).map(|i| PageId::new(NodeId(0), i)).collect()
}

/// One experiment registry row: short name, one-line description,
/// runner.
pub type Experiment = (&'static str, &'static str, fn() -> Table);

/// The named experiment registry, in report order. Powers
/// `experiments --list`, exact-name `--only`, and the selective runs
/// behind the `--check-baselines` regression gate (which runs only
/// the experiments its baseline file references).
pub const REGISTRY: &[Experiment] = &[
    ("t1", "protocol operation costs", t1_protocol_ops::run),
    ("e1", "commit cost per transaction", e1_commit_cost::run),
    (
        "e1b",
        "group commit: forces per commit",
        e1_commit_cost::run_group_commit,
    ),
    ("e1c", "adaptive group-commit window", e1c_adaptive::run),
    (
        "e2",
        "throughput scalability vs clients",
        e2_scalability::run,
    ),
    ("e3", "log volume vs server logging", e3_log_volume::run),
    ("e4", "page transfer costs", e4_page_transfer::run),
    (
        "e5",
        "single crash: recovery vs log-merge",
        e5_single_crash::run,
    ),
    (
        "e5b",
        "single crash: phase timings + force latency",
        e5_single_crash::run_timings,
    ),
    ("e6", "simultaneous multi-node crashes", e6_multi_crash::run),
    ("e7", "checkpoint cost", e7_checkpoint::run),
    ("e7b", "fault-injection resilience", e7_faults::run),
    ("e8", "log-space protocol (§2.5)", e8_log_space::run),
    ("e8b", "tracing overhead", e8_trace_overhead::run),
    ("e9", "partial rollback", e9_rollback::run),
    (
        "e9b",
        "parallel wave-scheduled replay",
        e9b_parallel_recovery::run,
    ),
    ("e10", "PCA local-commit variant", e10_pca::run),
    ("e11", "mobile/disconnected operation", e11_mobile::run),
    ("a1", "checkpoint interval ablation", a1_ckpt_interval::run),
];

/// Runs the experiment registered under `name` (exact, lowercase),
/// or None for an unknown name.
pub fn run_named(name: &str) -> Option<Table> {
    REGISTRY
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, _, run)| run())
}

/// Runs every experiment and returns the tables in registry order.
pub fn run_all() -> Vec<Table> {
    REGISTRY.iter().map(|(_, _, run)| run()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        for (i, (name, _, _)) in REGISTRY.iter().enumerate() {
            assert_eq!(*name, name.to_lowercase(), "registry names are lowercase");
            assert!(
                REGISTRY.iter().skip(i + 1).all(|(n, _, _)| n != name),
                "duplicate registry name {name}"
            );
        }
        assert!(run_named("nope").is_none());
        let t = run_named("t1").expect("t1 registered");
        assert!(!t.is_empty());
    }

    #[test]
    fn builders_produce_expected_shapes() {
        let c = cbl_cluster(3, 8, 16);
        assert_eq!(c.node_count(), 4);
        assert!(c.node(NodeId(0)).is_owner());
        assert!(!c.node(NodeId(2)).is_owner());
        let _s = csa_cluster(2, 8, 16);
        assert_eq!(pages0(3).len(), 3);
    }
}
