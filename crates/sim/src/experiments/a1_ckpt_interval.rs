//! A1 (ablation) — checkpoint + flush maintenance interval vs
//! recovery cost.
//!
//! The paper's checkpoints are cheap (fuzzy, local, zero messages —
//! E7), which is what makes frequent checkpointing affordable. A
//! checkpoint alone does not release log space, though: the DPT pins
//! the log at its minimum RedoLSN until the owners flush the dirty
//! pages and acknowledge (§2.2/§2.5). This ablation runs the natural
//! maintenance pairing — ask the owners to force the DPT pages, then
//! checkpoint and truncate — at varying intervals, and measures what
//! frequency buys: the retained log window and the recovery-time log
//! scans shrink proportionally.

use super::{cbl_cluster, pages0};
use crate::report::{f, Table};
use cblog_common::NodeId;
use cblog_core::recovery::recover;
use cblog_core::RecoveryOptions;

/// Crash point chosen off every interval's cycle boundary, so the
/// un-maintained residue differs per interval (7, 22, 47 and 97
/// transactions respectively).
const TXNS: u64 = 197;

/// Sweeps the checkpoint interval (transactions between checkpoints).
pub fn run() -> Table {
    let mut t = Table::new(
        "A1 ablation: checkpoint+flush interval vs recovery cost (197 txns)",
        &[
            "maintain every",
            "cycles",
            "bytes scanned at recovery",
            "log window B",
            "rec messages",
        ],
    );
    for interval in [10u64, 25, 50, 100, u64::MAX] {
        let r = run_one(interval);
        t.row(vec![
            if interval == u64::MAX {
                "never".into()
            } else {
                interval.to_string()
            },
            r.checkpoints.to_string(),
            f(r.bytes_scanned as f64),
            f(r.log_window as f64),
            r.messages.to_string(),
        ]);
    }
    t
}

/// One measurement.
pub struct CkptRow {
    /// Checkpoints taken during the run.
    pub checkpoints: u64,
    /// Log bytes scanned by the subsequent recovery.
    pub bytes_scanned: u64,
    /// Live log window (end - truncation point) at crash time.
    pub log_window: u64,
    /// Recovery messages.
    pub messages: u64,
}

/// Runs the workload with a maintenance cycle (owner flushes +
/// checkpoint) every `interval` transactions, then crashes the owner
/// and recovers.
pub fn run_one(interval: u64) -> CkptRow {
    let mut c = cbl_cluster(1, 8, 16);
    let client = NodeId(1);
    let pages = pages0(8);
    let mut checkpoints = 0u64;
    for i in 0..TXNS {
        let t = c.begin(client).unwrap();
        let p = pages[(i % 8) as usize];
        c.write_u64(t, p, (i % 16) as usize, i).unwrap();
        c.commit(t).unwrap();
        if interval != u64::MAX && (i + 1) % interval == 0 {
            // Maintenance cycle: flush the client's dirty pages at
            // their owners (advancing RedoLSNs via flush-acks), then
            // checkpoint and truncate.
            let dirty: Vec<_> = c.node(client).dpt().entries();
            for e in dirty {
                c.force_page(e.pid).unwrap();
            }
            c.checkpoint(client).unwrap();
            checkpoints += 1;
        }
    }
    // Push current images to the owner buffer so the crash matters.
    for p in &pages {
        let _ = c.evict_page(client, *p);
    }
    let log_window = c.node(client).log().used_space();
    c.crash(NodeId(0));
    let rep = recover(&mut c, &RecoveryOptions::single(NodeId(0))).expect("recovery");
    CkptRow {
        checkpoints,
        bytes_scanned: rep.log_bytes_scanned,
        log_window,
        messages: rep.messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequent_checkpoints_shrink_recovery_scans_and_log_window() {
        let frequent = run_one(10);
        let never = run_one(u64::MAX);
        assert!(frequent.checkpoints >= 19);
        assert_eq!(never.checkpoints, 0);
        assert!(
            frequent.log_window < never.log_window,
            "truncation follows checkpoints: {} vs {}",
            frequent.log_window,
            never.log_window
        );
        assert!(
            frequent.bytes_scanned < never.bytes_scanned,
            "analysis bounded by last checkpoint: {} vs {}",
            frequent.bytes_scanned,
            never.bytes_scanned
        );
    }
}
