//! E2 — scalability with client count.
//!
//! Paper §1.2: "additional performance and scalability gains are
//! realized when clients offer transactional facilities, because
//! dependencies on server resources are reduced considerably."
//!
//! Each client works on a private page partition (no lock contention),
//! so the only scaling limit is the busiest resource. Under server
//! logging every commit forces the *server's* log and every record
//! crosses the wire to the server, so server busy-time grows with
//! client count; under client-based logging the commit work stays
//! local and the bottleneck curve stays flat. Throughput is modeled as
//! committed transactions over bottleneck busy time.

use super::{cbl_cluster, csa_cluster, PAGE_SIZE};
use crate::driver::run_workload;
use crate::report::{f, Table};
use crate::workload::{generate, WorkloadConfig};
use cblog_common::{NodeId, PageId};
use cblog_core::{Cluster, ClusterConfig};

const PAGES_PER_CLIENT: u32 = 4;
const TXNS: usize = 30;

/// Sweeps the client count.
pub fn run() -> Table {
    let mut t = Table::new(
        "E2 scalability: throughput vs clients (private partitions)",
        &[
            "clients",
            "cbl tput (txn/s)",
            "cbl 2-owner tput",
            "csa tput (txn/s)",
            "csa server busy us",
            "cbl/csa speedup",
        ],
    );
    for clients in [1usize, 2, 4, 8, 16, 32] {
        let (cbl_tput, _) = run_one(clients, true);
        let (cbl2_tput, _) = run_one_two_owners(clients);
        let (csa_tput, csa_busy) = run_one(clients, false);
        t.row(vec![
            clients.to_string(),
            f(cbl_tput),
            f(cbl2_tput),
            f(csa_tput),
            f(csa_busy),
            f(cbl_tput.max(cbl2_tput) / csa_tput.max(1e-9)),
        ]);
    }
    t
}

/// As [`run_one`] for CBL, but the data is partitioned across **two**
/// owner nodes: once the single owner's page service becomes the
/// bottleneck, adding an owner lifts the ceiling — the residual
/// dependency is data placement, not logging.
pub fn run_one_two_owners(clients: usize) -> (f64, f64) {
    let half = (clients as u32).div_ceil(2) * PAGES_PER_CLIENT;
    let mut owned = vec![half, half];
    owned.extend(std::iter::repeat(0).take(clients));
    let mut c = Cluster::new(
        ClusterConfig::builder()
            .owned_pages(owned)
            .page_size(PAGE_SIZE)
            .buffer_frames(PAGES_PER_CLIENT as usize * 2)
            .default_owned_pages(0)
            .build(),
    )
    .expect("config");
    let cfg = WorkloadConfig {
        txns_per_client: TXNS,
        ops_per_txn: 4,
        write_ratio: 1.0,
        seed: 1234,
        slots_per_page: 8,
        ..WorkloadConfig::default()
    };
    let client_ids: Vec<NodeId> = (2..2 + clients as u32).map(NodeId).collect();
    let private = move |cl: NodeId| -> Vec<PageId> {
        let i = cl.0 - 2;
        let owner = NodeId(i % 2);
        let base = (i / 2) * PAGES_PER_CLIENT;
        (base..base + PAGES_PER_CLIENT)
            .map(|p| PageId::new(owner, p))
            .collect()
    };
    // The base page list is unused when a private-partition fn is given.
    let base: Vec<PageId> = vec![PageId::new(NodeId(0), 0)];
    let specs = generate(&cfg, &client_ids, &base, Some(&private));
    let stats = run_workload(&mut c, specs).expect("run");
    let busy = stats.max_busy.max(1);
    (stats.committed as f64 / (busy as f64 / 1e6), busy as f64)
}

fn specs(clients: usize) -> Vec<crate::workload::TxnSpec> {
    let cfg = WorkloadConfig {
        txns_per_client: TXNS,
        ops_per_txn: 4,
        write_ratio: 1.0,
        seed: 1234,
        slots_per_page: 8,
        ..WorkloadConfig::default()
    };
    let client_ids: Vec<NodeId> = (1..=clients as u32).map(NodeId).collect();
    let all: Vec<PageId> = (0..clients as u32 * PAGES_PER_CLIENT)
        .map(|i| PageId::new(NodeId(0), i))
        .collect();
    let private = move |c: NodeId| -> Vec<PageId> {
        let base = (c.0 - 1) * PAGES_PER_CLIENT;
        (base..base + PAGES_PER_CLIENT)
            .map(|i| PageId::new(NodeId(0), i))
            .collect()
    };
    generate(&cfg, &client_ids, &all, Some(&private))
}

/// Returns `(throughput txn/s, bottleneck busy µs)`.
pub fn run_one(clients: usize, cbl: bool) -> (f64, f64) {
    let pages = clients as u32 * PAGES_PER_CLIENT;
    let committed;
    let busy;
    if cbl {
        let mut c = cbl_cluster(clients, pages, PAGES_PER_CLIENT as usize * 2);
        let stats = run_workload(&mut c, specs(clients)).expect("run");
        committed = stats.committed;
        busy = stats.max_busy.max(1);
    } else {
        let mut s = csa_cluster(clients, pages, PAGES_PER_CLIENT as usize * 2);
        let stats = run_workload(&mut s, specs(clients)).expect("run");
        committed = stats.committed;
        busy = stats.max_busy.max(1);
    }
    let tput = committed as f64 / (busy as f64 / 1e6);
    (tput, busy as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_bottleneck_grows_faster_than_cbl() {
        let (_, cbl_busy_2) = run_one(2, true);
        let (_, cbl_busy_8) = run_one(8, true);
        let (_, csa_busy_2) = run_one(2, false);
        let (_, csa_busy_8) = run_one(8, false);
        let cbl_growth = cbl_busy_8 / cbl_busy_2;
        let csa_growth = csa_busy_8 / csa_busy_2;
        assert!(
            csa_growth > cbl_growth * 1.5,
            "server busy must scale with clients: cbl x{cbl_growth:.2}, csa x{csa_growth:.2}"
        );
    }

    #[test]
    fn cbl_throughput_wins_at_scale() {
        let (cbl, _) = run_one(8, true);
        let (csa, _) = run_one(8, false);
        assert!(cbl > csa, "cbl {cbl:.0} txn/s vs csa {csa:.0} txn/s");
    }
}
