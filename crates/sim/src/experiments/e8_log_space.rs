//! E8 — log space management (paper §2.5).
//!
//! A client with a small bounded log hammers updates to remote pages.
//! When the log fills, the §2.5 protocol replaces the minimum-RedoLSN
//! page, asks the owner to force it, and advances the truncation point
//! on the flush acknowledgment. The workload must complete regardless
//! of log size; the cost shows up as force requests and flush-acks.

use super::{cbl_cluster_opts, pages0};
use crate::report::{f, Table};
use cblog_common::NodeId;
use cblog_net::MsgKind;

const TXNS: u64 = 150;

/// Sweeps the client log capacity.
pub fn run() -> Table {
    let mut t = Table::new(
        "E8 log space protocol under bounded client logs (150 txns)",
        &[
            "log capacity B",
            "committed",
            "force-reqs",
            "flush-acks",
            "replace-pages",
            "owner disk IOs",
        ],
    );
    for cap in [4096u64, 8192, 16384, 65536] {
        let r = run_one(cap);
        t.row(vec![
            cap.to_string(),
            r.committed.to_string(),
            r.force_reqs.to_string(),
            r.flush_acks.to_string(),
            r.replaces.to_string(),
            f(r.owner_ios as f64),
        ]);
    }
    t
}

/// Measured quantities of one bounded-log run.
pub struct SpaceRow {
    /// Committed transactions (must equal the offered load).
    pub committed: u64,
    /// §2.5 force requests sent.
    pub force_reqs: u64,
    /// Flush acknowledgments received.
    pub flush_acks: u64,
    /// Dirty replacements shipped to the owner.
    pub replaces: u64,
    /// Owner disk writes.
    pub owner_ios: u64,
}

/// Runs the bounded-log workload at one capacity.
pub fn run_one(cap: u64) -> SpaceRow {
    let mut c = cbl_cluster_opts(1, 8, 16, Some(cap), false);
    let pages = pages0(8);
    let client = NodeId(1);
    let mut committed = 0u64;
    for i in 0..TXNS {
        let t = c.begin(client).expect("begin");
        let p = pages[(i % 8) as usize];
        c.write_u64(t, p, (i % 16) as usize, i).expect("write");
        c.commit(t).expect("commit");
        committed += 1;
    }
    let s = c.network().stats();
    SpaceRow {
        committed,
        force_reqs: s.count(MsgKind::ForceRequest),
        flush_acks: s.count(MsgKind::FlushAck),
        replaces: s.count(MsgKind::ReplacePage),
        owner_ios: c.network().disk_ios_of(NodeId(0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_completes_even_with_tiny_log() {
        let r = run_one(4096);
        assert_eq!(r.committed, TXNS);
        assert!(r.force_reqs > 0, "space protocol must have fired");
        assert!(r.flush_acks > 0);
    }

    #[test]
    fn bigger_logs_need_fewer_forced_flushes() {
        let small = run_one(4096);
        let big = run_one(65536);
        assert!(
            small.force_reqs > big.force_reqs,
            "small {} vs big {}",
            small.force_reqs,
            big.force_reqs
        );
        assert_eq!(big.committed, TXNS);
    }
}
