//! E6 — multiple simultaneous crashes (paper §2.4).
//!
//! A Figure-1-style topology (two owners, several clients) suffers k
//! simultaneous crashes. Recovery reconstructs crashed DPT supersets
//! from the logs, merges entries at the owners, and replays per page —
//! still without merging any log files.

use super::PAGE_SIZE;
use crate::report::{f, Table};
use cblog_common::{NodeId, PageId};
use cblog_core::recovery::recover;
use cblog_core::{Cluster, ClusterConfig, RecoveryOptions};

const PAGES_PER_OWNER: u32 = 6;

/// Sweeps the number of simultaneously crashed nodes.
pub fn run() -> Table {
    let mut t = Table::new(
        "E6 multi-node crash recovery (2 owners + 3 clients)",
        &[
            "crashed",
            "which",
            "pages replayed",
            "records",
            "rec messages",
            "losers undone",
            "bytes scanned",
        ],
    );
    for (k, which) in [
        (1usize, vec![NodeId(0)]),
        (2, vec![NodeId(0), NodeId(2)]),
        (3, vec![NodeId(0), NodeId(1), NodeId(2)]),
        (4, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]),
    ] {
        let rep = run_one(&which);
        t.row(vec![
            k.to_string(),
            format!("{which:?}"),
            rep.pages_recovered.to_string(),
            rep.records_replayed.to_string(),
            rep.messages.to_string(),
            rep.losers_undone.to_string(),
            f(rep.log_bytes_scanned as f64),
        ]);
    }
    t
}

/// The E6 topology (two owners + three clients) — exposed so the
/// tracedump scenarios can rebuild it with tracing enabled.
pub fn builder() -> cblog_core::ClusterConfigBuilder {
    ClusterConfig::builder()
        .owned_pages(vec![PAGES_PER_OWNER, PAGES_PER_OWNER, 0, 0, 0])
        .page_size(PAGE_SIZE)
        .buffer_frames(16)
        .default_owned_pages(0)
}

/// Builds the topology, runs a mixed workload, crashes `which`, and
/// recovers them together.
pub fn run_one(which: &[NodeId]) -> cblog_core::RecoveryReport {
    let mut c = Cluster::new(builder().build()).expect("config");
    run_on(&mut c, which)
}

/// Drives the E6 scenario on a caller-provided cluster of the
/// [`builder`] topology.
pub fn run_on(c: &mut Cluster, which: &[NodeId]) -> cblog_core::RecoveryReport {
    workload_and_crash(c, which);
    recover(c, &RecoveryOptions::nodes(which)).expect("multi recovery")
}

/// The pre-recovery half of [`run_on`]: mixed workload, evictions,
/// then crash `which` — E9b recovers the same scene under different
/// [`cblog_core::ReplayMode`]s.
pub fn workload_and_crash(c: &mut Cluster, which: &[NodeId]) {
    // Committed cross-owner traffic from every client.
    for round in 0..3u64 {
        for client in 2..=4u32 {
            for owner in 0..=1u32 {
                let p = PageId::new(NodeId(owner), (client + round as u32) % PAGES_PER_OWNER);
                let t = c.begin(NodeId(client)).unwrap();
                c.write_u64(t, p, client as usize % 8, round * 100 + client as u64)
                    .unwrap();
                c.commit(t).unwrap();
            }
        }
    }
    // Owners also update their own pages; one client leaves a loser.
    for owner in 0..=1u32 {
        let t = c.begin(NodeId(owner)).unwrap();
        c.write_u64(t, PageId::new(NodeId(owner), 5), 0, 777)
            .unwrap();
        c.commit(t).unwrap();
    }
    let loser = c.begin(NodeId(2)).unwrap();
    c.write_u64(loser, PageId::new(NodeId(0), 0), 7, 666)
        .unwrap();
    c.node_mut(NodeId(2)).force_log().unwrap();
    // Push some current images into owner buffers so the crash loses
    // them.
    for client in 2..=4u32 {
        for owner in 0..=1u32 {
            for i in 0..PAGES_PER_OWNER {
                let _ = c.evict_page(NodeId(client), PageId::new(NodeId(owner), i));
            }
        }
    }
    for &n in which {
        c.crash(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_crashes_mean_more_recovery_work() {
        let one = run_one(&[NodeId(0)]);
        let three = run_one(&[NodeId(0), NodeId(1), NodeId(2)]);
        assert!(three.messages >= one.messages);
        assert!(three.log_bytes_scanned >= one.log_bytes_scanned);
        assert!(three.pages_recovered >= one.pages_recovered);
    }

    #[test]
    fn loser_on_crashed_client_is_undone() {
        let rep = run_one(&[NodeId(0), NodeId(2)]);
        assert_eq!(rep.losers_undone, 1);
    }
}
