//! E5 — single-node crash recovery cost.
//!
//! Paper §2.3 and contribution (3): "local log files are never merged
//! during the recovery process". The owner crashes with `d` pages whose
//! current images exist only in its (lost) buffer; recovery replays
//! each page from the involved clients' logs in PSN order. The
//! comparator is the analytic cost of merge-based recovery
//! (Mohan–Narang fast schemes): *every* node's log tail must be read
//! and shipped, regardless of how many pages actually need recovery.

use super::{cbl_cluster, pages0};
use crate::report::{f, Table};
use cblog_baselines::log_merge_cost;
use cblog_common::metrics::keys;
use cblog_common::{HistogramSnapshot, NodeId, PageId};
use cblog_core::recovery::recover;
use cblog_core::Cluster;
use cblog_core::{PhaseTimings, RecoveryOptions};

const CLIENTS: usize = 2;
/// Unrelated committed transactions by a third, uninvolved client.
/// Its updates are flushed (and flush-acked) before the crash, so the
/// paper's protocol never opens its log — but a merge-based scheme
/// still reads and ships its whole tail.
const NOISE_TXNS: u64 = 40;

/// Sweeps the number of dirty pages at crash time.
pub fn run() -> Table {
    let mut t = Table::new(
        "E5 single crash (owner): NodePSNList recovery vs log-merge model",
        &[
            "dirty pages",
            "pages replayed",
            "records replayed",
            "rec messages",
            "cbl bytes scanned",
            "merge bytes read",
            "merge msgs",
        ],
    );
    for d in [1u32, 2, 4, 8, 16, 32] {
        let row = run_one(d);
        t.row(vec![
            d.to_string(),
            row.pages.to_string(),
            row.records.to_string(),
            row.messages.to_string(),
            f(row.bytes_scanned as f64),
            f(row.merge_bytes as f64),
            row.merge_msgs.to_string(),
        ]);
    }
    t
}

/// Companion table: where the restart time goes (per-phase sim-time
/// from `RecoveryReport::timings`) plus the clients' commit-force
/// latency distribution (`wal/commit_force_us`) for the same runs.
pub fn run_timings() -> Table {
    let mut t = Table::new(
        "E5b single crash: recovery phase timings and commit-force latency",
        &[
            "dirty pages",
            "analysis us",
            "info_exchange us",
            "lock_rebuild us",
            "recovery_sets us",
            "recovery_locks us",
            "psn_lists us",
            "replay us",
            "undo us",
            "total us",
            "commit force p50us",
            "commit force p95us",
            "commit force p99us",
        ],
    );
    for d in [1u32, 4, 16] {
        let row = run_one(d);
        let tm = &row.timings;
        t.row(vec![
            d.to_string(),
            tm.analysis_us().to_string(),
            tm.info_exchange_us().to_string(),
            tm.lock_rebuild_us().to_string(),
            tm.recovery_sets_us().to_string(),
            tm.recovery_locks_us().to_string(),
            tm.psn_lists_us().to_string(),
            tm.replay_us().to_string(),
            tm.undo_us().to_string(),
            tm.total_us().to_string(),
            row.commit_force_us.p50().to_string(),
            row.commit_force_us.p95().to_string(),
            row.commit_force_us.p99().to_string(),
        ]);
    }
    t
}

/// One crash/recovery measurement.
pub struct CrashRow {
    /// Pages replayed via NodePSNList.
    pub pages: usize,
    /// Records re-applied.
    pub records: u64,
    /// Recovery messages.
    pub messages: u64,
    /// Log bytes scanned by the paper's protocol.
    pub bytes_scanned: u64,
    /// Bytes a merge-based scheme would read.
    pub merge_bytes: u64,
    /// Messages a merge-based scheme would send.
    pub merge_msgs: u64,
    /// Per-phase sim-time of the recovery run.
    pub timings: PhaseTimings,
    /// Commit-force latency distribution of client 1's registry over
    /// the pre-crash workload.
    pub commit_force_us: HistogramSnapshot,
}

/// Dirty `d` pages via client transactions, push the images to the
/// owner's buffer, crash the owner, recover.
pub fn run_one(d: u32) -> CrashRow {
    // Three clients: 1 and 2 produce the recovery-relevant updates;
    // client 3 produces unrelated flushed noise on separate pages.
    let mut c = cbl_cluster(
        CLIENTS + 1,
        d.max(1) + NOISE_PAGES,
        (d as usize + 6).max(12),
    );
    run_on(&mut c, d)
}

/// Cluster shape [`run_one`] uses for `d` dirty pages — exposed so the
/// tracedump scenarios can rebuild it with tracing enabled.
pub fn shape(d: u32) -> (usize, u32, usize) {
    (
        CLIENTS + 1,
        d.max(1) + NOISE_PAGES,
        (d as usize + 6).max(12),
    )
}

const NOISE_PAGES: u32 = 4;

/// Drives the E5 scenario on a caller-provided cluster of the matching
/// [`shape`]: noise workload, dirty pages, owner crash, recovery.
pub fn run_on(c: &mut Cluster, d: u32) -> CrashRow {
    workload(c, d);
    let merge = log_merge_cost(c, &[NodeId(0)]);
    let commit_force_us = c
        .node(NodeId(1))
        .registry()
        .histogram(keys::WAL_COMMIT_FORCE_US)
        .snapshot();
    c.crash(NodeId(0));
    let rep = recover(c, &RecoveryOptions::single(NodeId(0))).expect("recovery");
    c.sample_telemetry();
    CrashRow {
        pages: rep.pages_recovered,
        records: rep.records_replayed,
        messages: rep.messages,
        bytes_scanned: rep.log_bytes_scanned,
        merge_bytes: merge.bytes_read,
        merge_msgs: merge.messages,
        timings: rep.timings,
        commit_force_us,
    }
}

/// The pre-crash E5 workload (noise + `d` dirty pages) without the
/// crash or the recovery — shared by [`run_on`] and E9b, which crashes
/// the same scene and recovers it under different
/// [`cblog_core::ReplayMode`]s.
pub fn workload(c: &mut Cluster, d: u32) {
    let noise_pages = NOISE_PAGES;
    let pages = pages0(d);
    // Noise first: committed, then forced to the owner's disk and
    // flush-acked, so client 3 ends with an empty DPT and is not
    // involved in any recovery.
    let noise_client = NodeId(CLIENTS as u32 + 1);
    for i in 0..NOISE_TXNS {
        let t = c.begin(noise_client).unwrap();
        let p = PageId::new(NodeId(0), d.max(1) + (i % noise_pages as u64) as u32);
        c.write_u64(t, p, (i % 8) as usize, i).unwrap();
        c.commit(t).unwrap();
        c.sample_telemetry();
    }
    for i in 0..noise_pages {
        c.force_page(PageId::new(NodeId(0), d.max(1) + i)).unwrap();
    }
    assert!(
        c.node(noise_client).dpt().is_empty(),
        "noise client fully flushed"
    );
    dirty_pages(c, &pages);
}

fn dirty_pages(c: &mut Cluster, pages: &[PageId]) {
    // Each page gets interleaved committed updates from both clients,
    // then the final holder's copy is evicted to the owner's buffer so
    // the crash loses the only current image.
    for (i, p) in pages.iter().enumerate() {
        for round in 0..2u64 {
            for cl in 1..=CLIENTS as u32 {
                let t = c.begin(NodeId(cl)).unwrap();
                c.write_u64(
                    t,
                    *p,
                    (round as usize + cl as usize) % 8,
                    i as u64 + round + cl as u64,
                )
                .unwrap();
                c.commit(t).unwrap();
                c.sample_telemetry();
            }
        }
        let holder = NodeId(CLIENTS as u32);
        c.evict_page(holder, *p).unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_work_scales_with_dirty_pages_only() {
        let small = run_one(2);
        let big = run_one(16);
        assert!(big.pages > small.pages);
        assert!(big.records > small.records);
        assert!(big.messages > small.messages);
    }

    #[test]
    fn phase_timings_and_force_histogram_are_populated() {
        let row = run_one(4);
        assert_eq!(row.timings.iter().count(), 9, "all nine phases timed");
        assert!(
            row.timings.replay_us() > 0,
            "replay moves pages, so it costs sim-time"
        );
        assert!(row.commit_force_us.count > 0, "commits recorded forces");
        assert!(row.commit_force_us.p50() > 0);
        let t = run_timings();
        assert_eq!(t.len(), 3);
        let json = t.to_json();
        assert!(json.contains("replay us"));
        assert!(json.contains("commit force p99us"));
    }

    #[test]
    fn merge_model_reads_uninvolved_logs_targeted_replay_does_not() {
        let row = run_one(4);
        assert!(row.pages >= 4);
        // The uninvolved client's log tail (40 committed txns) is read
        // and shipped by the merge scheme but never opened by the
        // paper's protocol: the gap must be substantial, not marginal.
        assert!(
            row.merge_bytes > row.bytes_scanned + 2000,
            "merge reads uninvolved logs: merge {} vs targeted {}",
            row.merge_bytes,
            row.bytes_scanned
        );
    }
}
