//! E1c — adaptive group commit vs the best static window.
//!
//! The static E1b sweep shows each MPL has its own best window: too
//! short and batches split, too long and light load pays pure latency.
//! The adaptive controller (DESIGN.md §5.1) resizes the window online
//! from the observed commit-arrival rate, so one configuration should
//! track the best static window at *every* MPL. This sweep reruns the
//! identical workload and compares forces-per-commit point by point.

use super::e1_commit_cost::{run_group_commit_point, run_policy_point, GroupCommitPoint};
use crate::report::{f, Table};
use cblog_core::GroupCommitPolicy;

/// The static windows the adaptive controller competes against —
/// the same grid as the E1b sweep (0 = immediate).
pub const STATIC_WINDOWS_US: [u64; 3] = [0, 500, 5_000];

/// MPLs swept by the comparison.
pub const MPLS: [usize; 4] = [1, 2, 4, 8];

/// The single adaptive configuration used at every MPL. The target
/// batch deliberately exceeds the deepest MPL in the sweep so the
/// deadline — not an early batch fill — is what closes every group,
/// exercising the rate estimator rather than the size cap.
pub fn adaptive_policy() -> GroupCommitPolicy {
    GroupCommitPolicy::Adaptive {
        min_window_us: 50,
        max_window_us: 20_000,
        target_batch: 16,
    }
}

/// One MPL's comparison: the best static point vs the adaptive point.
pub struct AdaptivePoint {
    /// Concurrently committing transactions per round.
    pub mpl: usize,
    /// The static point with the fewest forces per commit.
    pub best: GroupCommitPoint,
    /// The fixed adaptive configuration on the identical workload.
    pub adaptive: GroupCommitPoint,
}

impl AdaptivePoint {
    /// Adaptive forces-per-commit relative to the best static point.
    pub fn ratio(&self) -> f64 {
        self.adaptive.forces_per_commit / self.best.forces_per_commit
    }
}

/// Runs the full static grid plus the adaptive policy at one MPL.
pub fn run_point(mpl: usize) -> AdaptivePoint {
    let best = STATIC_WINDOWS_US
        .iter()
        .map(|&w| run_group_commit_point(mpl, w))
        .min_by(|a, b| a.forces_per_commit.total_cmp(&b.forces_per_commit))
        .expect("static sweep is non-empty");
    let adaptive = run_policy_point(mpl, adaptive_policy());
    AdaptivePoint {
        mpl,
        best,
        adaptive,
    }
}

/// Runs the MPL sweep.
pub fn run() -> Table {
    let mut t = Table::new(
        "E1c adaptive group commit vs best static window (1 client)",
        &[
            "mpl",
            "best window us",
            "best forces/commit",
            "adaptive forces/commit",
            "adaptive/best",
            "adaptive mean group",
            "adaptive msgs/commit",
            "adaptive live window us",
        ],
    );
    for mpl in MPLS {
        let p = run_point(mpl);
        t.row(vec![
            p.mpl.to_string(),
            p.best.window_us.to_string(),
            f(p.best.forces_per_commit),
            f(p.adaptive.forces_per_commit),
            f(p.ratio()),
            f(p.adaptive.mean_group),
            f(p.adaptive.msgs_per_commit),
            p.adaptive.live_window_us.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_matches_the_best_static_window_at_every_mpl() {
        for mpl in MPLS {
            let p = run_point(mpl);
            assert!(
                p.adaptive.forces_per_commit <= p.best.forces_per_commit * 1.10 + 1e-9,
                "mpl {}: adaptive {} vs best static {} (window {})",
                mpl,
                p.adaptive.forces_per_commit,
                p.best.forces_per_commit,
                p.best.window_us
            );
            assert_eq!(
                p.adaptive.msgs_per_commit, 0.0,
                "mpl {mpl}: commit path stays message-free under adaptive"
            );
        }
    }

    #[test]
    fn adaptive_amortizes_at_depth_and_stays_single_force_when_light() {
        let p1 = run_point(1);
        assert!(
            (p1.adaptive.forces_per_commit - 1.0).abs() < 1e-9,
            "mpl 1 degenerates to one force per commit: {}",
            p1.adaptive.forces_per_commit
        );
        let p8 = run_point(8);
        assert!(
            p8.adaptive.forces_per_commit < 0.5,
            "mpl 8 shares forces: {}",
            p8.adaptive.forces_per_commit
        );
    }

    #[test]
    fn the_window_gauge_surfaces_the_adapted_window() {
        let p = run_point(4);
        assert!(
            p.adaptive.live_window_us >= 50,
            "gauge reports a live window at or above the floor: {}",
            p.adaptive.live_window_us
        );
        assert!(
            p.adaptive.live_window_us <= 20_000,
            "gauge never exceeds the cap: {}",
            p.adaptive.live_window_us
        );
    }

    #[test]
    fn table_has_a_row_per_mpl() {
        assert_eq!(run().len(), MPLS.len());
    }
}
