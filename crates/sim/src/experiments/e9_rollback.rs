//! E9 — rollback locality.
//!
//! Paper contribution (2): "transaction rollback and node crash
//! recovery are handled exclusively by the nodes". Rollback runs
//! against the local log; the only messages are page re-fetches when
//! an updated page was already replaced from the cache (§2.2). With a
//! tiny cache the re-fetch cost becomes visible; with an adequate one
//! rollback is message-free.

use super::{cbl_cluster, pages0};
use crate::driver::run_workload;
use crate::report::{f, Table};
use crate::workload::{generate, WorkloadConfig};
use cblog_common::NodeId;

/// Sweeps the abort probability at two cache sizes.
pub fn run() -> Table {
    let mut t = Table::new(
        "E9 rollback cost (1 client, 100 txns, messages per abort)",
        &[
            "abort prob",
            "cache frames",
            "aborts",
            "msgs/abort",
            "clr records",
        ],
    );
    for frames in [2usize, 16] {
        for prob in [0.1f64, 0.3, 0.5] {
            let r = run_one(prob, frames);
            t.row(vec![
                f(prob),
                frames.to_string(),
                r.aborts.to_string(),
                f(r.msgs_per_abort),
                r.clrs.to_string(),
            ]);
        }
    }
    t
}

/// One rollback measurement.
pub struct RollbackRow {
    /// User aborts executed.
    pub aborts: u64,
    /// Messages attributable to the abort phase per abort.
    pub msgs_per_abort: f64,
    /// CLR-sized growth of the local log (records appended beyond
    /// Begin/Update/Commit).
    pub clrs: u64,
}

/// Runs the abort-heavy workload.
pub fn run_one(abort_prob: f64, frames: usize) -> RollbackRow {
    let mut c = cbl_cluster(1, 8, frames);
    let cfg = WorkloadConfig {
        txns_per_client: 100,
        ops_per_txn: 5,
        write_ratio: 1.0,
        abort_prob,
        seed: 31,
        ..WorkloadConfig::default()
    };
    let specs = generate(&cfg, &[NodeId(1)], &pages0(8), None);
    // Reference run with the same workload but aborts disabled, to
    // isolate abort-phase messages.
    let mut no_abort = specs.clone();
    for s in &mut no_abort {
        s.user_abort = false;
    }
    let mut c_ref = cbl_cluster(1, 8, frames);
    let ref_stats = run_workload(&mut c_ref, no_abort).expect("ref");
    let stats = run_workload(&mut c, specs).expect("run");
    let aborts = stats.user_aborts.max(1);
    let extra = stats
        .net
        .total_messages()
        .saturating_sub(ref_stats.net.total_messages());
    let ref_recs = c_ref.node(NodeId(1)).log().records_appended();
    let recs = c.node(NodeId(1)).log().records_appended();
    RollbackRow {
        aborts: stats.user_aborts,
        msgs_per_abort: extra as f64 / aborts as f64,
        clrs: recs.saturating_sub(ref_recs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollback_with_ample_cache_is_message_free() {
        let r = run_one(0.3, 16);
        assert!(r.aborts > 0);
        assert!(
            r.msgs_per_abort <= 0.5,
            "rollback should be local, got {} msgs/abort",
            r.msgs_per_abort
        );
    }

    #[test]
    fn clrs_are_written_for_undone_work() {
        let r = run_one(0.5, 16);
        assert!(r.clrs > 0, "undo must log compensation records");
    }
}
