//! E10 — three-way commit-cost comparison: client-based logging vs
//! server logging (ARIES/CSA, §3.1) vs primary-copy authority (Rahm,
//! §3.2).
//!
//! Paper §3.2 on PCA: "commit processing involves the sending of each
//! updated page to the node that holds the PCA for that page.
//! Furthermore, double logging is required for every page that is
//! modified by a node other than the PCA node. … Our algorithms do not
//! require updated pages to be sent to the owner nodes at transaction
//! commit time, nor do they require log records to be written in two
//! log files."
//!
//! Steady state, one client updating k distinct remote pages per
//! transaction.

use super::{cbl_cluster, csa_cluster, pages0, PAGE_SIZE};
use crate::report::{f, Table};
use cblog_baselines::{PcaCluster, PcaConfig};
use cblog_common::{CostModel, NodeId};
use cblog_core::GroupCommitPolicy;

const TXNS: u64 = 50;
const PAGES: u32 = 8;

/// Sweeps distinct pages updated per transaction.
pub fn run() -> Table {
    let mut t = Table::new(
        "E10 commit cost: CBL vs server logging vs PCA (per txn)",
        &[
            "pages/txn",
            "cbl msgs",
            "cbl bytes",
            "csa msgs",
            "csa bytes",
            "pca msgs",
            "pca bytes",
            "pca 2nd-log recs",
        ],
    );
    for k in [1usize, 2, 4, 8] {
        let (am, ab) = run_cbl(k);
        let (bm, bb) = run_csa(k);
        let (cm, cb, dl) = run_pca(k);
        t.row(vec![
            k.to_string(),
            f(am),
            f(ab),
            f(bm),
            f(bb),
            f(cm),
            f(cb),
            f(dl),
        ]);
    }
    t
}

fn run_cbl(k: usize) -> (f64, f64) {
    let mut c = cbl_cluster(1, PAGES, 16);
    let pages = pages0(PAGES);
    let t = c.begin(NodeId(1)).unwrap();
    for p in &pages {
        c.write_u64(t, *p, 0, 1).unwrap();
    }
    c.commit(t).unwrap();
    let s0 = c.network().stats();
    for i in 0..TXNS {
        let t = c.begin(NodeId(1)).unwrap();
        for p in pages.iter().take(k) {
            c.write_u64(t, *p, 1, i).unwrap();
        }
        c.commit(t).unwrap();
    }
    let d = c.network().stats().since(&s0);
    (
        d.total_messages() as f64 / TXNS as f64,
        d.total_bytes() as f64 / TXNS as f64,
    )
}

fn run_csa(k: usize) -> (f64, f64) {
    let mut s = csa_cluster(1, PAGES, 16);
    let pages = pages0(PAGES);
    let t = s.begin(NodeId(1)).unwrap();
    for p in &pages {
        s.write_u64(t, *p, 0, 1).unwrap();
    }
    s.commit(t).unwrap();
    let s0 = s.network().stats();
    for i in 0..TXNS {
        let t = s.begin(NodeId(1)).unwrap();
        for p in pages.iter().take(k) {
            s.write_u64(t, *p, 1, i).unwrap();
        }
        s.commit(t).unwrap();
    }
    let d = s.network().stats().since(&s0);
    (
        d.total_messages() as f64 / TXNS as f64,
        d.total_bytes() as f64 / TXNS as f64,
    )
}

fn run_pca(k: usize) -> (f64, f64, f64) {
    let mut s = PcaCluster::new(PcaConfig {
        nodes: 2,
        pages: PAGES,
        page_size: PAGE_SIZE,
        buffer_frames: 16,
        cost: CostModel::default(),
        group_commit: GroupCommitPolicy::Immediate,
    })
    .unwrap();
    let pages = pages0(PAGES);
    let t = s.begin(NodeId(1)).unwrap();
    for p in &pages {
        s.write_u64(t, *p, 0, 1).unwrap();
    }
    s.commit(t).unwrap();
    let s0 = s.network().stats();
    let recs0 = s.log_of(NodeId(0)).records_appended();
    for i in 0..TXNS {
        let t = s.begin(NodeId(1)).unwrap();
        for p in pages.iter().take(k) {
            s.write_u64(t, *p, 1, i).unwrap();
        }
        s.commit(t).unwrap();
    }
    let d = s.network().stats().since(&s0);
    let second_log = s.log_of(NodeId(0)).records_appended() - recs0;
    (
        d.total_messages() as f64 / TXNS as f64,
        d.total_bytes() as f64 / TXNS as f64,
        second_log as f64 / TXNS as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pca_pays_page_shipping_and_double_logging_cbl_pays_nothing() {
        let (cbl_m, _) = run_cbl(4);
        let (pca_m, pca_b, dl) = run_pca(4);
        assert_eq!(cbl_m, 0.0);
        // 4 pages × (page-ship + log-ship + ack) = 12 messages/txn.
        assert!((pca_m - 12.0).abs() < 1e-9, "pca {pca_m} msgs/txn");
        assert!(pca_b > 4.0 * PAGE_SIZE as f64, "pages dominate the bytes");
        assert!((dl - 4.0).abs() < 1e-9, "one duplicated record per update");
    }

    #[test]
    fn pca_costs_scale_with_updated_pages_csa_with_bytes_only() {
        let (pca1, _, _) = run_pca(1);
        let (pca8, _, _) = run_pca(8);
        assert!(pca8 > 6.0 * pca1);
        let (csa1, _) = run_csa(1);
        let (csa8, _) = run_csa(8);
        assert_eq!(csa1, csa8, "CSA message count is flat (3/txn)");
    }
}
