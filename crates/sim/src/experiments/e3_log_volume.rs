//! E3 — log-record shipping volume.
//!
//! The byte-level view of the §1.1 claim (and the §3.1 Versant
//! contrast: "our architecture … avoids generating all log records at
//! commit time"): under server logging every update record crosses the
//! network; under client-based logging none do. Both write comparable
//! byte volumes to *some* log — the difference is where the bytes go.

use super::{cbl_cluster, csa_cluster, pages0};
use crate::driver::run_workload;
use crate::report::{f, Table};
use crate::workload::{generate, WorkloadConfig};
use cblog_common::NodeId;
use cblog_net::MsgKind;

const CLIENTS: usize = 2;
const PAGES: u32 = 8;

/// Sweeps the write ratio.
pub fn run() -> Table {
    let mut t = Table::new(
        "E3 log shipping volume vs write ratio (2 clients, 300 txns)",
        &[
            "write ratio",
            "cbl shipped log bytes",
            "cbl local log bytes",
            "csa shipped log bytes",
            "csa server log bytes",
        ],
    );
    for ratio in [0.1f64, 0.25, 0.5, 0.75, 1.0] {
        let (cbl_ship, cbl_local) = run_cbl(ratio);
        let (csa_ship, csa_srv) = run_csa(ratio);
        t.row(vec![
            f(ratio),
            f(cbl_ship),
            f(cbl_local),
            f(csa_ship),
            f(csa_srv),
        ]);
    }
    t
}

fn wl(ratio: f64) -> Vec<crate::workload::TxnSpec> {
    let cfg = WorkloadConfig {
        txns_per_client: 150,
        ops_per_txn: 6,
        write_ratio: ratio,
        seed: 77,
        ..WorkloadConfig::default()
    };
    let clients: Vec<NodeId> = (1..=CLIENTS as u32).map(NodeId).collect();
    generate(&cfg, &clients, &pages0(PAGES), None)
}

fn run_cbl(ratio: f64) -> (f64, f64) {
    let mut c = cbl_cluster(CLIENTS, PAGES, 32);
    let stats = run_workload(&mut c, wl(ratio)).expect("run");
    let shipped = stats.net.bytes_of(MsgKind::LogShip) as f64;
    let local: u64 = (0..=CLIENTS as u32)
        .map(|i| c.node(NodeId(i)).log().bytes_written())
        .sum();
    (shipped, local as f64)
}

fn run_csa(ratio: f64) -> (f64, f64) {
    let mut s = csa_cluster(CLIENTS, PAGES, 32);
    let stats = run_workload(&mut s, wl(ratio)).expect("run");
    let shipped = stats.net.bytes_of(MsgKind::LogShip) as f64;
    (shipped, s.server_log().bytes_written() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbl_ships_no_log_bytes_csa_ships_plenty() {
        let (cbl_ship, cbl_local) = run_cbl(0.5);
        let (csa_ship, csa_srv) = run_csa(0.5);
        assert_eq!(cbl_ship, 0.0);
        assert!(cbl_local > 0.0, "records land in local logs");
        assert!(csa_ship > 0.0, "records cross the wire");
        assert!(csa_srv > 0.0);
    }

    #[test]
    fn shipped_bytes_grow_with_write_ratio() {
        let (a, _) = run_csa(0.1);
        let (b, _) = run_csa(1.0);
        assert!(b > 2.0 * a, "low {a} high {b}");
    }
}
