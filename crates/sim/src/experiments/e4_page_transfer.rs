//! E4 — inter-node page transfer without forcing.
//!
//! Paper §4 contribution (1): "updated pages are not forced to disk at
//! transaction commit time or when they are replaced from a node
//! cache"; §3.2 contrasts Rdb/VMS, which forces modified pages to disk
//! before shipping them between nodes. A hot page ping-pongs among
//! sharing writers; the force-on-transfer baseline pays one owner disk
//! write per exchange.

use super::{cbl_cluster_opts, pages0};
use crate::report::{f, Table};
use cblog_common::NodeId;

const ROUNDS: u64 = 25;

/// Sweeps the number of sharing writer nodes.
pub fn run() -> Table {
    let mut t = Table::new(
        "E4 page ping-pong: no-force vs force-on-transfer (25 rounds)",
        &[
            "sharing nodes",
            "cbl owner disk IOs",
            "cbl sim ms",
            "fot owner disk IOs",
            "fot sim ms",
            "fot/cbl time",
        ],
    );
    for nodes in [2usize, 4, 8] {
        let (cbl_io, cbl_ms) = run_one(nodes, false);
        let (fot_io, fot_ms) = run_one(nodes, true);
        t.row(vec![
            nodes.to_string(),
            f(cbl_io),
            f(cbl_ms),
            f(fot_io),
            f(fot_ms),
            f(fot_ms / cbl_ms.max(1e-9)),
        ]);
    }
    t
}

/// Returns `(owner disk IOs, simulated milliseconds)`.
pub fn run_one(sharers: usize, force: bool) -> (f64, f64) {
    let mut c = cbl_cluster_opts(sharers, 2, 8, None, force);
    let p = pages0(1)[0];
    for round in 0..ROUNDS {
        for s in 1..=sharers as u32 {
            let t = c.begin(NodeId(s)).unwrap();
            c.write_u64(t, p, 0, round * 100 + s as u64).unwrap();
            c.commit(t).unwrap();
        }
    }
    (
        c.network().disk_ios_of(NodeId(0)) as f64,
        c.network().clock().now() as f64 / 1000.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_on_transfer_pays_disk_per_exchange() {
        let (cbl_io, cbl_ms) = run_one(2, false);
        let (fot_io, fot_ms) = run_one(2, true);
        assert!(
            fot_io > cbl_io + ROUNDS as f64,
            "cbl {cbl_io} vs fot {fot_io}"
        );
        assert!(fot_ms > cbl_ms, "forcing costs simulated time");
    }
}
