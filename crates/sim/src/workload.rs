//! Parameterized workload generation (seeded, reproducible).

use cblog_common::{NodeId, PageId, Rng};

/// One operation of a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Read a counter slot.
    Read {
        /// Target page.
        pid: PageId,
        /// Slot within the page.
        slot: usize,
    },
    /// Overwrite a counter slot.
    Write {
        /// Target page.
        pid: PageId,
        /// Slot within the page.
        slot: usize,
        /// Value written.
        value: u64,
    },
}

impl Op {
    /// The page the operation touches.
    pub fn pid(&self) -> PageId {
        match self {
            Op::Read { pid, .. } | Op::Write { pid, .. } => *pid,
        }
    }

    /// True for writes.
    pub fn is_write(&self) -> bool {
        matches!(self, Op::Write { .. })
    }
}

/// A full transaction to execute at a client.
#[derive(Clone, Debug)]
pub struct TxnSpec {
    /// Node the transaction runs on.
    pub client: NodeId,
    /// Operations in order.
    pub ops: Vec<Op>,
    /// If true the transaction is rolled back instead of committed
    /// (user-initiated abort).
    pub user_abort: bool,
}

/// Workload shape parameters.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// RNG seed — identical seeds produce identical workloads.
    pub seed: u64,
    /// Transactions per client.
    pub txns_per_client: usize,
    /// Operations per transaction.
    pub ops_per_txn: usize,
    /// Fraction of operations that are writes.
    pub write_ratio: f64,
    /// Fraction of accesses that hit the hot set.
    pub hot_access: f64,
    /// Fraction of pages forming the hot set.
    pub hot_fraction: f64,
    /// Probability a transaction ends in a user abort.
    pub abort_prob: f64,
    /// Slots used per page (bounds slot choice).
    pub slots_per_page: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 42,
            txns_per_client: 50,
            ops_per_txn: 8,
            write_ratio: 0.5,
            hot_access: 0.0,
            hot_fraction: 0.1,
            abort_prob: 0.0,
            slots_per_page: 16,
        }
    }
}

/// Generates per-client transaction queues over `pages`. Each client
/// draws from the same page population (sharing governed by hot-set
/// skew); `private_pages`, if given, maps each client to a disjoint
/// page subset instead (contention-free workloads for bottleneck
/// experiments).
pub fn generate(
    cfg: &WorkloadConfig,
    clients: &[NodeId],
    pages: &[PageId],
    private_pages: Option<&dyn Fn(NodeId) -> Vec<PageId>>,
) -> Vec<TxnSpec> {
    assert!(!pages.is_empty(), "workload needs pages");
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let hot_n = ((pages.len() as f64 * cfg.hot_fraction).ceil() as usize).clamp(1, pages.len());
    let mut specs = Vec::with_capacity(clients.len() * cfg.txns_per_client);
    let mut val = 1u64;
    for &client in clients {
        let pool: Vec<PageId> = match private_pages {
            Some(f) => f(client),
            None => pages.to_vec(),
        };
        assert!(!pool.is_empty(), "client {client} has no pages");
        let hot = hot_n.min(pool.len());
        for _ in 0..cfg.txns_per_client {
            let mut ops = Vec::with_capacity(cfg.ops_per_txn);
            for _ in 0..cfg.ops_per_txn {
                let pid = if cfg.hot_access > 0.0 && rng.gen_bool(cfg.hot_access) {
                    pool[rng.gen_range_usize(0..hot)]
                } else {
                    pool[rng.gen_range_usize(0..pool.len())]
                };
                let slot = rng.gen_range_usize(0..cfg.slots_per_page);
                if rng.gen_bool(cfg.write_ratio) {
                    val += 1;
                    ops.push(Op::Write {
                        pid,
                        slot,
                        value: val,
                    });
                } else {
                    ops.push(Op::Read { pid, slot });
                }
            }
            let user_abort = cfg.abort_prob > 0.0 && rng.gen_bool(cfg.abort_prob);
            specs.push(TxnSpec {
                client,
                ops,
                user_abort,
            });
        }
    }
    specs
}

/// All pages owned by `owner` for a cluster with `count` pages there.
pub fn owned_pages(owner: NodeId, count: u32) -> Vec<PageId> {
    (0..count).map(|i| PageId::new(owner, i)).collect()
}

/// A bank-transfer workload (TPC-B flavoured): every transaction moves
/// an amount between two account slots, preserving the total balance.
/// The conserved sum is a strong serializability + atomicity oracle —
/// it holds under any interleaving, any aborts, and any crash/recovery
/// sequence, which point-value oracles cannot check.
#[derive(Clone, Debug)]
pub struct TransferSpec {
    /// Node the transfer runs on.
    pub client: NodeId,
    /// Source account (page, slot).
    pub from: (PageId, usize),
    /// Destination account (page, slot).
    pub to: (PageId, usize),
    /// Amount moved.
    pub amount: u64,
    /// Roll back instead of committing.
    pub user_abort: bool,
}

/// Generates `txns_per_client` transfers per client over `accounts`
/// (each account = (page, slot)). Amounts stay small relative to the
/// initial balance so accounts never go negative.
pub fn generate_transfers(
    seed: u64,
    clients: &[NodeId],
    accounts: &[(PageId, usize)],
    txns_per_client: usize,
    abort_prob: f64,
) -> Vec<TransferSpec> {
    assert!(accounts.len() >= 2, "transfers need two accounts");
    let mut rng = Rng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(clients.len() * txns_per_client);
    for &client in clients {
        for _ in 0..txns_per_client {
            let a = rng.gen_range_usize(0..accounts.len());
            let mut b = rng.gen_range_usize(0..accounts.len() - 1);
            if b >= a {
                b += 1;
            }
            out.push(TransferSpec {
                client,
                from: accounts[a],
                to: accounts[b],
                amount: rng.gen_range(1..5),
                user_abort: abort_prob > 0.0 && rng.gen_bool(abort_prob),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadConfig::default();
        let clients = [NodeId(1), NodeId(2)];
        let pages = owned_pages(NodeId(0), 8);
        let a = generate(&cfg, &clients, &pages, None);
        let b = generate(&cfg, &clients, &pages, None);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.ops, y.ops);
            assert_eq!(x.client, y.client);
            assert_eq!(x.user_abort, y.user_abort);
        }
    }

    #[test]
    fn write_ratio_respected_roughly() {
        let cfg = WorkloadConfig {
            write_ratio: 0.25,
            txns_per_client: 100,
            ops_per_txn: 10,
            ..WorkloadConfig::default()
        };
        let specs = generate(&cfg, &[NodeId(1)], &owned_pages(NodeId(0), 4), None);
        let (mut w, mut total) = (0usize, 0usize);
        for s in &specs {
            for op in &s.ops {
                total += 1;
                if op.is_write() {
                    w += 1;
                }
            }
        }
        let ratio = w as f64 / total as f64;
        assert!((0.18..0.32).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn hot_skew_concentrates_accesses() {
        let cfg = WorkloadConfig {
            hot_access: 0.9,
            hot_fraction: 0.1,
            txns_per_client: 200,
            ..WorkloadConfig::default()
        };
        let pages = owned_pages(NodeId(0), 20);
        let specs = generate(&cfg, &[NodeId(1)], &pages, None);
        let hot_set: Vec<PageId> = pages[..2].to_vec();
        let (mut hot, mut total) = (0usize, 0usize);
        for s in &specs {
            for op in &s.ops {
                total += 1;
                if hot_set.contains(&op.pid()) {
                    hot += 1;
                }
            }
        }
        assert!(
            hot as f64 / total as f64 > 0.7,
            "hot fraction {}",
            hot as f64 / total as f64
        );
    }

    #[test]
    fn private_pages_partition() {
        let cfg = WorkloadConfig::default();
        let pages = owned_pages(NodeId(0), 8);
        let private = |c: NodeId| -> Vec<PageId> {
            if c == NodeId(1) {
                pages[..4].to_vec()
            } else {
                pages[4..].to_vec()
            }
        };
        let specs = generate(&cfg, &[NodeId(1), NodeId(2)], &pages, Some(&private));
        for s in &specs {
            for op in &s.ops {
                if s.client == NodeId(1) {
                    assert!(op.pid().index < 4);
                } else {
                    assert!(op.pid().index >= 4);
                }
            }
        }
    }

    #[test]
    fn transfers_pick_distinct_accounts() {
        let accounts: Vec<(PageId, usize)> = (0..4u32)
            .flat_map(|p| (0..4usize).map(move |s| (PageId::new(NodeId(0), p), s)))
            .collect();
        let specs = generate_transfers(9, &[NodeId(1), NodeId(2)], &accounts, 50, 0.2);
        assert_eq!(specs.len(), 100);
        for t in &specs {
            assert_ne!(t.from, t.to);
            assert!(t.amount >= 1 && t.amount < 5);
        }
        assert!(specs.iter().any(|t| t.user_abort));
        // Deterministic.
        let again = generate_transfers(9, &[NodeId(1), NodeId(2)], &accounts, 50, 0.2);
        assert_eq!(specs.len(), again.len());
        assert_eq!(specs[7].from, again[7].from);
        assert_eq!(specs[7].amount, again[7].amount);
    }

    #[test]
    fn abort_probability_generates_aborts() {
        let cfg = WorkloadConfig {
            abort_prob: 0.5,
            txns_per_client: 100,
            ..WorkloadConfig::default()
        };
        let specs = generate(&cfg, &[NodeId(1)], &owned_pages(NodeId(0), 4), None);
        let aborts = specs.iter().filter(|s| s.user_abort).count();
        assert!((20..80).contains(&aborts), "aborts {aborts}");
    }
}
