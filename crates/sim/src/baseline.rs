//! The perf-regression gate behind `experiments --check-baselines`.
//!
//! `BASELINES.json` (committed at the repo root) pins headline numbers
//! from the experiment tables — commit-path messages, forces per
//! commit, recovery phase times, trace overhead — each with a
//! tolerance band. The gate re-runs exactly the experiments the file
//! references (by registry short name, see
//! [`crate::experiments::REGISTRY`]), extracts the referenced cells
//! and fails on any value outside its band. The simulator is
//! deterministic, so most bands are zero-width: any drift is a real
//! behavior change and must be acknowledged by re-baselining.
//!
//! File format (parsed with the in-tree [`cblog_common::jsonv`]):
//!
//! ```json
//! {
//!   "baselines": [
//!     {"experiment": "e1", "metric": "cbl commit messages",
//!      "row": 0, "col": 3, "expect": 0, "tol_pct": 0}
//!   ]
//! }
//! ```
//!
//! `row`/`col` index the named experiment's table (data rows, zero
//! based); `expect` is compared against the cell parsed as a number.
//! A value passes if `|actual − expect| ≤ max(tol_abs, tol_pct% ·
//! |expect|)` (both tolerances default to 0).

use crate::experiments;
use crate::report::Table;
use cblog_common::jsonv;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One pinned table cell with its tolerance band.
#[derive(Clone, Debug)]
pub struct BaselineEntry {
    /// Registry short name of the experiment (`e1`, `e5b`, …).
    pub experiment: String,
    /// Human-readable label for reports.
    pub metric: String,
    /// Data-row index into the experiment's table.
    pub row: usize,
    /// Column index.
    pub col: usize,
    /// Expected value.
    pub expect: f64,
    /// Relative tolerance, percent of `|expect|`.
    pub tol_pct: f64,
    /// Absolute tolerance (useful when `expect` is 0).
    pub tol_abs: f64,
}

/// The verdict for one entry after running its experiment.
#[derive(Clone, Debug)]
pub struct BaselineOutcome {
    /// The checked entry.
    pub entry: BaselineEntry,
    /// The value the re-run produced.
    pub actual: f64,
    /// True if `actual` is inside the tolerance band.
    pub ok: bool,
}

/// Parses a baselines document. Errors carry enough context to fix
/// the file by hand.
pub fn parse(json: &str) -> Result<Vec<BaselineEntry>, String> {
    let doc = jsonv::parse(json)?;
    let arr = doc
        .get("baselines")
        .and_then(|v| v.as_arr())
        .ok_or("baselines file has no \"baselines\" array")?;
    let mut out = Vec::with_capacity(arr.len());
    for (i, e) in arr.iter().enumerate() {
        let field_str = |k: &str| -> Result<String, String> {
            e.get(k)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("baselines[{i}]: missing string field {k:?}"))
        };
        let field_num = |k: &str| -> Result<f64, String> {
            e.get(k)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("baselines[{i}]: missing numeric field {k:?}"))
        };
        let opt_num = |k: &str| e.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0);
        let experiment = field_str("experiment")?;
        if !experiments::REGISTRY
            .iter()
            .any(|(n, _, _)| *n == experiment)
        {
            return Err(format!(
                "baselines[{i}]: unknown experiment {experiment:?} (see `experiments --list`)"
            ));
        }
        out.push(BaselineEntry {
            experiment,
            metric: field_str("metric")?,
            row: field_num("row")? as usize,
            col: field_num("col")? as usize,
            expect: field_num("expect")?,
            tol_pct: opt_num("tol_pct"),
            tol_abs: opt_num("tol_abs"),
        });
    }
    if out.is_empty() {
        return Err("baselines file pins no entries".into());
    }
    Ok(out)
}

/// Checks one entry against an already-run table (pure — unit tested
/// with synthetic tables).
pub fn evaluate(entry: &BaselineEntry, table: &Table) -> Result<BaselineOutcome, String> {
    if entry.row >= table.len() {
        return Err(format!(
            "{}: row {} out of range (table {:?} has {} rows)",
            entry.metric,
            entry.row,
            table.title(),
            table.len()
        ));
    }
    let cell = table.cell(entry.row, entry.col);
    let actual: f64 = cell.parse().map_err(|_| {
        format!(
            "{}: cell ({}, {}) of {:?} is not numeric: {cell:?}",
            entry.metric,
            entry.row,
            entry.col,
            table.title()
        )
    })?;
    let band = entry
        .tol_abs
        .max(entry.tol_pct / 100.0 * entry.expect.abs());
    let ok = (actual - entry.expect).abs() <= band;
    Ok(BaselineOutcome {
        entry: entry.clone(),
        actual,
        ok,
    })
}

/// Parses `json`, runs every referenced experiment once, and checks
/// all entries. Returns every outcome (passes and failures).
pub fn check(json: &str) -> Result<Vec<BaselineOutcome>, String> {
    let entries = parse(json)?;
    let mut tables: BTreeMap<String, Table> = BTreeMap::new();
    let mut out = Vec::with_capacity(entries.len());
    for e in &entries {
        if !tables.contains_key(&e.experiment) {
            let t = experiments::run_named(&e.experiment)
                .ok_or_else(|| format!("unknown experiment {:?}", e.experiment))?;
            tables.insert(e.experiment.clone(), t);
        }
        out.push(evaluate(e, &tables[&e.experiment])?);
    }
    Ok(out)
}

/// Renders outcomes as the gate's report: one line per entry, `FAIL`
/// lines carry the band.
pub fn render(outcomes: &[BaselineOutcome]) -> String {
    let mut out = String::new();
    for o in outcomes {
        let e = &o.entry;
        let verdict = if o.ok { "ok  " } else { "FAIL" };
        let _ = writeln!(
            out,
            "{verdict} {exp:>4} [{r},{c}] {metric}: actual {actual} vs expect {expect} (tol {tol_pct}% / ±{tol_abs})",
            exp = e.experiment,
            r = e.row,
            c = e.col,
            metric = e.metric,
            actual = o.actual,
            expect = e.expect,
            tol_pct = e.tol_pct,
            tol_abs = e.tol_abs,
        );
    }
    let failed = outcomes.iter().filter(|o| !o.ok).count();
    let _ = writeln!(
        out,
        "{} baseline(s) checked, {} failed",
        outcomes.len(),
        failed
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("demo", &["k", "v"]);
        t.row(vec!["a".into(), "10.00".into()]);
        t.row(vec!["b".into(), "0".into()]);
        t
    }

    fn entry(row: usize, col: usize, expect: f64, tol_pct: f64, tol_abs: f64) -> BaselineEntry {
        BaselineEntry {
            experiment: "e1".into(),
            metric: "demo metric".into(),
            row,
            col,
            expect,
            tol_pct,
            tol_abs,
        }
    }

    #[test]
    fn within_band_passes_and_perturbed_expectation_is_rejected() {
        let t = table();
        assert!(evaluate(&entry(0, 1, 10.0, 0.0, 0.0), &t).unwrap().ok);
        assert!(evaluate(&entry(0, 1, 10.5, 5.0, 0.0), &t).unwrap().ok);
        assert!(evaluate(&entry(0, 1, 10.5, 0.0, 0.5), &t).unwrap().ok);
        // The regression-gate contract: a perturbed baseline fails.
        let bad = evaluate(&entry(0, 1, 12.0, 5.0, 0.0), &t).unwrap();
        assert!(!bad.ok, "12 ±5% does not cover 10");
        assert!(render(&[bad]).contains("FAIL"));
        // Zero expectations demand exact zeros unless tol_abs widens.
        assert!(evaluate(&entry(1, 1, 0.0, 50.0, 0.0), &t).unwrap().ok);
        let nonzero = evaluate(&entry(1, 1, 1.0, 0.0, 0.0), &t).unwrap();
        assert!(!nonzero.ok);
    }

    #[test]
    fn structural_errors_are_reported_not_panicked() {
        let t = table();
        assert!(evaluate(&entry(9, 1, 1.0, 0.0, 0.0), &t)
            .unwrap_err()
            .contains("out of range"));
        assert!(evaluate(&entry(0, 0, 1.0, 0.0, 0.0), &t)
            .unwrap_err()
            .contains("not numeric"));
    }

    #[test]
    fn parse_validates_names_and_fields() {
        let good = r#"{"baselines":[{"experiment":"e1","metric":"m","row":0,"col":1,"expect":3,"tol_pct":1}]}"#;
        let es = parse(good).unwrap();
        assert_eq!(es.len(), 1);
        assert_eq!(es[0].experiment, "e1");
        assert_eq!(es[0].tol_abs, 0.0, "tol_abs defaults to 0");
        let bad_name =
            r#"{"baselines":[{"experiment":"zz","metric":"m","row":0,"col":1,"expect":3}]}"#;
        assert!(parse(bad_name).unwrap_err().contains("unknown experiment"));
        assert!(parse("{}").unwrap_err().contains("baselines"));
        assert!(parse(r#"{"baselines":[]}"#)
            .unwrap_err()
            .contains("no entries"));
    }

    #[test]
    fn committed_baselines_file_parses_against_the_registry() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BASELINES.json");
        let json = std::fs::read_to_string(path).expect("BASELINES.json committed at repo root");
        let entries = parse(&json).expect("committed baselines parse");
        assert!(entries.len() >= 6, "gate pins a meaningful set of numbers");
        // The issue's required coverage: commit cost, group commit,
        // recovery phase times, trace overhead.
        for exp in ["e1", "e1b", "e5b", "e8b"] {
            assert!(
                entries.iter().any(|e| e.experiment == exp),
                "baselines must cover {exp}"
            );
        }
    }
}
