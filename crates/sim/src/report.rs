//! Plain-text report tables (aligned ASCII + CSV) for the experiment
//! harness. No dependencies: experiments print to stdout and
//! `EXPERIMENTS.md` embeds the output verbatim.

use cblog_common::obs::json_escape;
use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Cell accessor (row, column) for tests.
    pub fn cell(&self, r: usize, c: usize) -> &str {
        &self.rows[r][c]
    }

    /// Renders the aligned ASCII form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(s, " {c:>w$} |", w = w);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders the table as a JSON object: `{"title", "headers",
    /// "rows"}` with every cell a string (cells already carry their
    /// formatting).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"title\":\"{}\",", json_escape(&self.title));
        let _ = write!(out, "\"headers\":[");
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", json_escape(h));
        }
        out.push_str("],\"rows\":[");
        for (r, row) in self.rows.iter().enumerate() {
            if r > 0 {
                out.push(',');
            }
            out.push('[');
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\"", json_escape(cell));
            }
            out.push(']');
        }
        out.push_str("]}");
        out
    }

    /// Renders CSV (title as a comment line).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Formats a float compactly for table cells.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        let lines: Vec<&str> = s.lines().collect();
        // Header, separator, two rows after the title.
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[1].len(), lines[3].len(), "aligned widths");
        assert_eq!(t.cell(1, 0), "long-name");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("a,b"));
        assert!(csv.contains("1,2"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn json_round_trips_structure() {
        let mut t = Table::new("demo \"quoted\"", &["a", "b"]);
        t.row(vec!["1".into(), "x\ny".into()]);
        let j = t.to_json();
        assert!(j.starts_with("{\"title\":\"demo \\\"quoted\\\"\""));
        assert!(j.contains("\"headers\":[\"a\",\"b\"]"));
        assert!(j.contains("\"rows\":[[\"1\",\"x\\ny\"]]"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1234.6), "1235");
        assert_eq!(f(42.4242), "42.42");
        assert_eq!(f(0.01234), "0.0123");
    }
}
