//! Threaded execution runtime: real threads, real fsync, real clock.
//!
//! The simulator ([`cblog_core::Cluster`]) runs the CBL protocol on a
//! simulated clock with in-memory stores — deterministic, and the
//! correctness oracle for everything here. This crate runs the *same*
//! per-node protocol machinery ([`cblog_core::Node`]) under real
//! concurrency:
//!
//! * **one OS thread per node** — each worker owns its `Node` (moved
//!   into the thread; `Node: Send` is asserted in core) and drives its
//!   MPL transaction streams;
//! * **file-backed WALs** — each node's log lives on a
//!   [`FileLogStore`], so a log force is an actual `fdatasync`;
//! * **channel transport** — inter-node traffic crosses threads over
//!   [`cblog_net::transport::ChannelMesh`] (per-link FIFO, accounted);
//! * **wall-clock group commit** — the per-node
//!   [`ForceScheduler`] from core is time-source agnostic (it takes
//!   `now` in µs), so the exact same Immediate/Window/Adaptive batching
//!   logic runs here against a [`WallClock`];
//! * **sharded page locks** — one process-wide
//!   [`ShardedLockTable`] gives strict 2PL across all worker threads
//!   without a global mutex.
//!
//! The paper's headline property survives the move to real threads
//! unchanged: a commit is one local log force and **zero messages** —
//! the only traffic on the mesh is read-path page fetching.
//!
//! # Scope
//!
//! Writes must target pages owned by the writing node; remote pages
//! are readable (fetched from the owner over the transport, S-locked
//! for the duration of the transaction). Remote *writes* need the full
//! callback-locking / page-replacement machinery, which today only the
//! simulator drives; plans containing them are rejected rather than
//! half-supported.
//!
//! # Correctness anchor
//!
//! `tests/equivalence.rs` runs identical seeded plan lists on both
//! engines and asserts the final page images are byte-identical and
//! the commit tallies equal. With per-stream-private write sets the
//! final state is interleaving-independent, so any divergence is an
//! engine bug, not scheduling noise.
//!
//! # Observability (DESIGN §14)
//!
//! Real threaded runs carry the same observability stack as the
//! simulator:
//!
//! * **Send-safe tracing** — each worker fills a private [`SpanBuf`]
//!   with the sim tracer's span vocabulary; the buffers are merged
//!   deterministically at join and the merged trace is replayed
//!   through a fresh [`Tracer`], so the protocol watchdog checks
//!   PSN-order, the WAL rule, and no-log-on-the-wire on real
//!   executions too (including parallel replay). `run` and `recover`
//!   fail with [`Error::Protocol`] on any violation.
//! * **Per-thread profiler** — each worker attributes its wall time
//!   to the shared [`Bucket`] taxonomy with the simulator's exact
//!   partition invariant (`disk + cpu + net + replay == busy`); the
//!   split is exported per node as `prof/*_us` gauges and as
//!   [`RtNodeStats`].
//! * **Exact latency percentiles** — commit latencies feed a
//!   [`Reservoir`] of recorded values beside the log-2 histogram, so
//!   [`RtRunStats::p50_us`]/[`RtRunStats::p99_us`] are exact samples
//!   rather than bucket upper bounds.

use cblog_common::metrics::{keys, prof_key};
use cblog_common::{
    Bucket, Error, Histogram, Lsn, MetricValue, NodeId, PageId, Psn, RecoveryPhase, Reservoir,
    Result, SimTime, Snapshot, Span, SpanBuf, SpanCtx, SpanId, SpanKind, Tracer, TransferWhy,
    TxnId,
};
use cblog_core::{
    plan_replay, ForceScheduler, GroupCommitPolicy, Node, NodeConfig, NodePsnEntry, PhaseTimings,
    PlanOp, RecoveryOptions, RecoveryReport, RunReport, Runtime, TxnPlan, WaveTiming,
};
use cblog_locks::{LockMode, ShardedLockTable};
use cblog_net::transport::{ChannelEndpoint, ChannelMesh, Envelope, Transport};
use cblog_net::MsgKind;
use cblog_storage::Page;
use cblog_wal::{FileLogStore, LogStore, MemLogStore, PageOp};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wall-clock time source, µs since construction. The value feeds the
/// same [`ForceScheduler`] interfaces the simulator feeds sim-µs into.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// Clock starting at 0 now.
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }

    /// Microseconds elapsed since construction.
    pub fn now_us(&self) -> SimTime {
        self.epoch.elapsed().as_micros() as SimTime
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

/// Where each node's WAL lives.
#[derive(Clone, Debug)]
pub enum WalBacking {
    /// In-memory log store (tests; no real fsync).
    Mem,
    /// One `node<i>.wal` file per node inside this directory, opened
    /// as a [`FileLogStore`]: forces are real `fdatasync`s.
    Dir(PathBuf),
}

/// Configuration of a threaded cluster.
#[derive(Clone, Debug)]
pub struct ThreadClusterConfig {
    /// Pages owned by each node; length = node count.
    pub owned_pages: Vec<u32>,
    /// Page size in bytes.
    pub page_size: usize,
    /// Buffer frames per node (size above the working set: the
    /// threaded runtime treats eviction of a dirty page as overflow).
    pub buffer_frames: usize,
    /// Group-commit policy, shared by every node.
    pub group_commit: GroupCommitPolicy,
    /// Shards in the process-wide lock table.
    pub lock_shards: usize,
    /// WAL backing for every node.
    pub wal: WalBacking,
    /// Per-worker span tracing. When on, every run and recovery is
    /// merged into the cluster trace and checked by the protocol
    /// watchdog at join. Off buys back the (small) tracing overhead;
    /// `rtbench --trace-overhead` measures it.
    pub tracing: bool,
    /// Capacity of each worker's span buffer (spans beyond it are
    /// dropped and counted, never reallocated mid-run).
    pub trace_capacity: usize,
}

impl Default for ThreadClusterConfig {
    fn default() -> Self {
        ThreadClusterConfig {
            owned_pages: vec![16, 16],
            page_size: 1024,
            buffer_frames: 256,
            group_commit: GroupCommitPolicy::Immediate,
            lock_shards: 16,
            wal: WalBacking::Mem,
            tracing: true,
            trace_capacity: cblog_common::span::DEFAULT_TRACE_CAPACITY,
        }
    }
}

/// Per-run aggregates beyond the [`RunReport`] tally.
#[derive(Clone, Copy, Debug, Default)]
pub struct RtRunStats {
    /// Wall time of the run, µs.
    pub wall_us: u64,
    /// Log forces summed over nodes (delta for this run).
    pub forces: u64,
    /// Messages crossing the mesh (all read-path).
    pub msgs: u64,
    /// Messages on the commit path — zero by construction; reported
    /// so benchmarks can assert the paper's headline property.
    pub commit_msgs: u64,
    /// Median commit latency (submit → durable ack), µs — an exact
    /// recorded value from the latency [`Reservoir`], not a histogram
    /// bucket bound.
    pub p50_us: u64,
    /// Tail commit latency, µs (exact recorded value, see `p50_us`).
    pub p99_us: u64,
    /// Spans this run added to the cluster trace (0 with tracing off).
    pub spans: u64,
}

/// Wall-time split of one worker thread across the profiler [`Bucket`]
/// taxonomy the simulator uses (DESIGN §14).
///
/// The partition invariant is the simulator's, held *exactly* in
/// integer µs: `disk + cpu + net + replay == busy`, with `lock_wait`
/// accounted beside busy and `busy + lock_wait <= wall`. The
/// remainder of the wall time is idle parking in `recv_timeout`
/// (group-commit windows, shutdown straggler service), which is
/// deliberately not attributed to any bucket.
#[derive(Clone, Copy, Debug, Default)]
pub struct RtNodeStats {
    /// Node id.
    pub node: u32,
    /// Worker wall time, µs.
    pub wall_us: u64,
    /// Non-idle worker time: everything the thread did outside
    /// lock-wait spinning and idle parks, µs.
    pub busy_us: u64,
    /// Time inside log forces (fsync), µs.
    pub disk_us: u64,
    /// Time in channel sends/receives and page-fetch service, µs.
    pub net_us: u64,
    /// Busy remainder: transaction execution and loop bookkeeping, µs.
    pub cpu_us: u64,
    /// Time spinning on contended page locks, net of the inbox
    /// service performed between spins, µs.
    pub lock_wait_us: u64,
    /// Time replaying recovery waves, µs (0 for normal runs; filled
    /// into the `prof/replay_us` gauge by `recover`).
    pub replay_us: u64,
}

/// Capacity of the exact commit-latency sample reservoir.
const LATENCY_RESERVOIR_CAP: usize = 4096;

/// A set of OS-thread nodes executing [`TxnPlan`]s.
pub struct ThreadCluster {
    cfg: ThreadClusterConfig,
    nodes: Vec<Node>,
    locks: Arc<ShardedLockTable>,
    latency: Histogram,
    latency_samples: Reservoir,
    last: Option<RtRunStats>,
    last_nodes: Vec<RtNodeStats>,
    /// Cluster-lifetime clock: every worker stamps spans off the same
    /// epoch, so timestamps are monotone across runs and recoveries.
    epoch: WallClock,
    /// Merged span trace, in watchdog-checkable order.
    trace: Vec<Span>,
    trace_next_id: u64,
    trace_dropped: u64,
}

impl ThreadCluster {
    /// Builds the nodes (and their WAL files, for
    /// [`WalBacking::Dir`]).
    pub fn new(cfg: ThreadClusterConfig) -> Result<Self> {
        let mut nodes = Vec::with_capacity(cfg.owned_pages.len());
        for (i, &owned) in cfg.owned_pages.iter().enumerate() {
            let ncfg = NodeConfig {
                page_size: cfg.page_size,
                buffer_frames: cfg.buffer_frames,
                owned_pages: owned,
                log_capacity: None,
            };
            let store: Box<dyn LogStore> = match &cfg.wal {
                WalBacking::Mem => Box::new(MemLogStore::new()),
                WalBacking::Dir(dir) => {
                    std::fs::create_dir_all(dir)?;
                    Box::new(FileLogStore::open(&dir.join(format!("node{i}.wal")))?)
                }
            };
            nodes.push(Node::with_log_store(NodeId(i as u32), ncfg, store)?);
        }
        let locks = Arc::new(ShardedLockTable::new(cfg.lock_shards));
        Ok(ThreadCluster {
            cfg,
            nodes,
            locks,
            latency: Histogram::new(),
            latency_samples: Reservoir::new(LATENCY_RESERVOIR_CAP),
            last: None,
            last_nodes: Vec::new(),
            epoch: WallClock::new(),
            trace: Vec::new(),
            trace_next_id: 0,
            trace_dropped: 0,
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.cfg.owned_pages.len()
    }

    /// Aggregates of the most recent [`Runtime::run`].
    pub fn last_stats(&self) -> Option<RtRunStats> {
        self.last
    }

    /// Per-worker wall-time split of the most recent run, ordered by
    /// node id.
    pub fn last_node_stats(&self) -> &[RtNodeStats] {
        &self.last_nodes
    }

    /// The shared commit-latency histogram (µs, submit → durable).
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// Exact commit-latency samples feeding [`RtRunStats::p50_us`] /
    /// [`RtRunStats::p99_us`] (the histogram stays for bucketed
    /// exports; the reservoir keeps recorded values).
    pub fn latency_samples(&self) -> &Reservoir {
        &self.latency_samples
    }

    /// The merged span trace accumulated across runs, crashes and
    /// recoveries (empty when [`ThreadClusterConfig::tracing`] is
    /// off). Spans are in watchdog order: per-worker emission order,
    /// workers concatenated ascending, batches appended run by run.
    pub fn trace(&self) -> &[Span] {
        &self.trace
    }

    /// Spans lost to per-worker buffer overflow, cumulative.
    pub fn trace_dropped(&self) -> u64 {
        self.trace_dropped
    }

    /// Appends a span to the merged trace with a fresh id, regardless
    /// of the tracing switch — a hook for tests to inject observations
    /// the workers did not make (e.g. a forged out-of-order replay
    /// hop) and watch [`ThreadCluster::trace_check`] catch them.
    pub fn inject_span(&mut self, node: NodeId, parent: SpanId, kind: SpanKind) -> SpanId {
        let at = self.epoch.now_us();
        self.trace_next_id += 1;
        let id = SpanId(self.trace_next_id);
        self.trace.push(Span {
            id,
            parent,
            node,
            start: at,
            dur: 0,
            kind,
        });
        id
    }

    /// Replays the merged trace through a fresh single-threaded
    /// [`Tracer`], so the simulator's protocol watchdog checks the
    /// same invariants on real threaded executions it checks on
    /// simulated ones: per-page PSN order (updates and replay hops),
    /// the WAL rule on page ships and owned writes, and
    /// no-log-on-the-wire. `run` and `recover` call this at join when
    /// tracing is on; tests may call it after [`Self::inject_span`].
    pub fn trace_check(&self) -> Result<()> {
        if self.trace.is_empty() {
            return Ok(());
        }
        let tracer = Tracer::new(self.trace.len() + 1);
        for s in &self.trace {
            tracer.emit(s.clone());
        }
        tracer.check().map_err(Error::Protocol)
    }

    /// Emits a point span from the coordinating thread (ids continue
    /// the merged sequence directly). No-op returning
    /// [`SpanId::NONE`] when tracing is off.
    fn trace_point(&mut self, node: NodeId, parent: SpanId, kind: SpanKind) -> SpanId {
        if !self.cfg.tracing {
            return SpanId::NONE;
        }
        self.inject_span(node, parent, kind)
    }

    /// Merges per-worker buffers into the cluster trace.
    fn absorb(&mut self, bufs: Vec<SpanBuf>) {
        let (spans, dropped) = SpanBuf::merge(bufs, &mut self.trace_next_id);
        self.trace.extend(spans);
        self.trace_dropped += dropped;
    }

    /// Crashes `node`: its volatile state (buffer, DPT, transaction
    /// table, unforced log tail) is lost; the database file and the
    /// durable WAL survive. Follow with [`Runtime::recover`].
    pub fn crash(&mut self, node: NodeId) -> Result<()> {
        let i = node.0 as usize;
        if i >= self.nodes.len() {
            return Err(Error::Invalid(format!("crash of unknown node {node}")));
        }
        self.nodes[i].crash();
        // The watchdog resets its per-page frontiers at a Crash span,
        // exactly as in the simulator.
        self.trace_point(node, SpanId::NONE, SpanKind::Crash { node });
        Ok(())
    }

    fn node_mut(&mut self, id: NodeId) -> Result<&mut Node> {
        let i = id.0 as usize;
        self.nodes
            .get_mut(i)
            .ok_or_else(|| Error::Invalid(format!("unknown node {id}")))
    }
}

impl Runtime for ThreadCluster {
    fn name(&self) -> &'static str {
        "threads"
    }

    fn run(&mut self, plans: &[TxnPlan]) -> Result<RunReport> {
        let n = self.node_count();
        let mut per_node: Vec<Vec<TxnPlan>> = vec![Vec::new(); n];
        for plan in plans {
            let i = plan.client.0 as usize;
            if i >= n {
                return Err(Error::Invalid(format!(
                    "plan for unknown node {}",
                    plan.client
                )));
            }
            per_node[i].push(plan.clone());
        }

        let endpoints = ChannelMesh::endpoints(n);
        let nodes = std::mem::take(&mut self.nodes);
        let forces_before: u64 = nodes.iter().map(|nd| nd.log().forces()).sum();
        let remaining = Arc::new(AtomicUsize::new(n));
        let clock = self.epoch;
        let tracing = self.cfg.tracing;
        let trace_cap = self.cfg.trace_capacity;
        let started = Instant::now();

        let outcomes: Vec<Result<WorkerOutcome>> = std::thread::scope(|s| {
            let handles: Vec<_> = nodes
                .into_iter()
                .zip(endpoints)
                .zip(per_node)
                .map(|((node, ep), plans)| {
                    let locks = Arc::clone(&self.locks);
                    let remaining = Arc::clone(&remaining);
                    let latency = self.latency.clone();
                    let samples = self.latency_samples.clone();
                    let policy = self.cfg.group_commit;
                    let buf = if tracing {
                        SpanBuf::new(node.id().0, trace_cap)
                    } else {
                        SpanBuf::disabled()
                    };
                    s.spawn(move || {
                        run_worker(
                            node, ep, locks, plans, policy, clock, remaining, latency, samples, buf,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(_) => Err(Error::Protocol("worker thread panicked".into())),
                })
                .collect()
        });

        let wall_us = started.elapsed().as_micros() as u64;
        let mut report = RunReport::default();
        let mut msgs = 0;
        let mut restored = Vec::with_capacity(n);
        let mut node_stats = Vec::with_capacity(n);
        let mut bufs = Vec::with_capacity(n);
        let mut first_err = None;
        for outcome in outcomes {
            match outcome {
                Ok(o) => {
                    report.committed += o.report.committed;
                    report.user_aborts += o.report.user_aborts;
                    report.forced_aborts += o.report.forced_aborts;
                    report.ops_executed += o.report.ops_executed;
                    msgs += o.sent;
                    node_stats.push(RtNodeStats {
                        node: o.node.id().0,
                        ..o.stats
                    });
                    restored.push(o.node);
                    bufs.push(o.buf);
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        restored.sort_by_key(|nd| nd.id().0);
        node_stats.sort_by_key(|s| s.node);
        self.nodes = restored;

        // Merge the per-worker traces and mirror each worker's bucket
        // split onto its node's registry (cumulative, like the sim
        // profiler's gauges).
        let spans_before = self.trace.len();
        self.absorb(bufs);
        for s in &node_stats {
            let reg = self.nodes[s.node as usize].registry();
            reg.gauge(prof_key(Bucket::Disk)).add(s.disk_us as i64);
            reg.gauge(prof_key(Bucket::Cpu)).add(s.cpu_us as i64);
            reg.gauge(prof_key(Bucket::Net)).add(s.net_us as i64);
            reg.gauge(prof_key(Bucket::LockWait))
                .add(s.lock_wait_us as i64);
            reg.gauge(prof_key(Bucket::Replay)).add(s.replay_us as i64);
        }
        self.last_nodes = node_stats;

        let forces_after: u64 = self.nodes.iter().map(|nd| nd.log().forces()).sum();
        self.last = Some(RtRunStats {
            wall_us,
            forces: forces_after - forces_before,
            msgs,
            commit_msgs: 0,
            p50_us: self.latency_samples.percentile(0.50),
            p99_us: self.latency_samples.percentile(0.99),
            spans: (self.trace.len() - spans_before) as u64,
        });
        if self.cfg.tracing {
            self.trace_check()?;
        }
        Ok(report)
    }

    fn page_image(&mut self, pid: PageId) -> Result<Vec<u8>> {
        let i = pid.owner.0 as usize;
        if i >= self.nodes.len() {
            return Err(Error::NoSuchPage(pid));
        }
        self.nodes[i].page_image(pid)
    }

    fn metrics(&self) -> Snapshot {
        let mut out = Snapshot::default();
        for node in &self.nodes {
            out.merge_prefixed(&format!("n{}/", node.id().0), node.registry().snapshot());
        }
        out.entries.insert(
            "rt/commit_latency_us".into(),
            MetricValue::Histogram(Box::new(self.latency.snapshot())),
        );
        out
    }

    /// Crash recovery under real concurrency. The threaded runtime
    /// only writes owned pages, so every update record for a page
    /// lives in its owner's WAL — the [`plan_replay`] dependency graph
    /// degenerates to independent per-page chains and Redo is
    /// embarrassingly parallel: each wave's units are latched and
    /// replayed by [`ReplayMode::Parallel`](cblog_core::ReplayMode)
    /// worker threads. Each replay lane records its hops into a
    /// [`SpanBuf`]; the merged trace is replayed through the protocol
    /// watchdog at the end ([`ThreadCluster::trace_check`]), which
    /// enforces the same per-page PSN-order invariant on real parallel
    /// replay that the simulator's tracer enforces on simulated
    /// recovery.
    fn recover(&mut self, opts: &RecoveryOptions) -> Result<RecoveryReport> {
        let crashed = opts.recovered_nodes().to_vec();
        for &c in &crashed {
            if c.0 as usize >= self.nodes.len() {
                return Err(Error::Invalid(format!("recovery of unknown node {c}")));
            }
        }
        let workers = opts.replay_mode().workers();
        let rec_root = match crashed.first() {
            Some(&c) => self.trace_point(
                c,
                SpanId::NONE,
                SpanKind::Recovery {
                    nodes: crashed.len() as u32,
                },
            ),
            None => SpanId::NONE,
        };
        let mut report = RecoveryReport {
            recovered_nodes: crashed.clone(),
            ..RecoveryReport::default()
        };
        let mut timings = PhaseTimings::default();
        let mut mark = Instant::now();
        fn lap(mark: &mut Instant) -> u64 {
            let us = mark.elapsed().as_micros() as u64;
            *mark = Instant::now();
            us
        }

        // ---- Analysis: tail repair + ARIES analysis per crashed
        // node. The message phases of the distributed protocol
        // (InfoExchange … RecoveryLocks) have no threaded counterpart:
        // updates are owner-local, so no operational node holds state
        // the restarting owner needs; their timings stay zero. ----
        let mut losers: Vec<(NodeId, Vec<TxnId>)> = Vec::new();
        for &c in &crashed {
            let node = self.node_mut(c)?;
            report.torn_bytes_discarded += node.mark_restarting()?;
            let a = node.restart_analysis()?;
            report.log_bytes_scanned += a.bytes_scanned;
            losers.push((c, a.losers));
        }
        timings.record(RecoveryPhase::Analysis, lap(&mut mark));

        // ---- PSN lists: each crashed owner's NodePSNList over its
        // own dirty pages (the only log involved, see above). ----
        let mut involved: BTreeMap<PageId, Vec<NodeId>> = BTreeMap::new();
        let mut psn_lists: BTreeMap<NodeId, Vec<NodePsnEntry>> = BTreeMap::new();
        for &c in &crashed {
            let node = self.node_mut(c)?;
            let pages: Vec<PageId> = node.dpt().entries().iter().map(|e| e.pid).collect();
            for &pid in &pages {
                involved.entry(pid).or_default().push(c);
            }
            psn_lists.insert(c, node.build_psn_list(&pages)?);
        }
        timings.record(RecoveryPhase::PsnLists, lap(&mut mark));

        let plan = plan_replay(&involved, &psn_lists);
        report.replay_waves = plan.waves.len();
        report.critical_path_psns = plan.critical_path_psns;

        // ---- Replay: wave by wave. Log extraction is serial (it
        // needs the owner's log) but batched — one scan per crashed
        // node serves every unit; the PSN-filtered redo itself runs on
        // `workers` scoped threads against owned page images. ----
        let mut extracted: BTreeMap<PageId, Vec<(Psn, PageOp)>> = BTreeMap::new();
        let mut targets: BTreeMap<NodeId, BTreeMap<PageId, Lsn>> = BTreeMap::new();
        for unit in &plan.units {
            let start = unit.hops.iter().map(|h| h.2).min().unwrap_or(Lsn::ZERO);
            targets
                .entry(unit.pid.owner)
                .or_default()
                .insert(unit.pid, start);
        }
        for (owner, pages) in targets {
            extracted.append(&mut self.node_mut(owner)?.collect_replay_records_batch(&pages)?);
        }
        let mut wave_timings = Vec::with_capacity(plan.waves.len());
        let tracing = self.cfg.tracing;
        let trace_cap = self.cfg.trace_capacity;
        let clock = self.epoch;
        let mut replay_by_node: BTreeMap<NodeId, u64> = BTreeMap::new();
        let mut replay_lock_wait: BTreeMap<NodeId, u64> = BTreeMap::new();
        for wave in &plan.waves {
            let mut work = Vec::with_capacity(wave.len());
            for &ui in wave {
                let unit = &plan.units[ui];
                let node = self.node_mut(unit.pid.owner)?;
                let (page, _) = node.authoritative_copy(unit.pid)?;
                let records = extracted.remove(&unit.pid).unwrap_or_default();
                work.push(ReplayWork {
                    pid: unit.pid,
                    page,
                    records,
                });
            }
            let wave_started = Instant::now();
            let mut lanes: Vec<Vec<ReplayWork>> = (0..workers).map(|_| Vec::new()).collect();
            for (i, w) in work.into_iter().enumerate() {
                lanes[i % workers].push(w);
            }
            let outcomes: Vec<Result<(Vec<ReplayedUnit>, SpanBuf)>> = std::thread::scope(|s| {
                let handles: Vec<_> = lanes
                    .into_iter()
                    .enumerate()
                    .map(|(lane, items)| {
                        let locks = Arc::clone(&self.locks);
                        let buf = if tracing {
                            SpanBuf::new(lane as u32, trace_cap)
                        } else {
                            SpanBuf::disabled()
                        };
                        s.spawn(move || replay_lane(&locks, lane, items, buf, clock, rec_root))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(r) => r,
                        Err(_) => Err(Error::Protocol("replay worker panicked".into())),
                    })
                    .collect()
            });
            let makespan_us = wave_started.elapsed().as_micros() as u64;
            let mut timing = WaveTiming {
                makespan_us,
                ..WaveTiming::default()
            };
            // Absorb every lane's hop spans before the page writes so
            // the merged trace shows each wave's replay before the
            // durable writes it produced (per-wave merging also keeps
            // lane buffer ids from colliding across waves).
            let mut wave_units = Vec::new();
            let mut lane_bufs = Vec::new();
            for outcome in outcomes {
                let (units, buf) = outcome?;
                lane_bufs.push(buf);
                wave_units.extend(units);
            }
            self.absorb(lane_bufs);
            for done in wave_units {
                report.records_replayed += done.applied;
                report.pages_recovered += 1;
                timing.units += 1;
                timing.serial_us += done.wall_us;
                let owner = done.page.id().owner;
                *replay_by_node.entry(owner).or_insert(0) +=
                    done.wall_us.saturating_sub(done.lock_wait_us);
                *replay_lock_wait.entry(owner).or_insert(0) += done.lock_wait_us;
                // Durable write re-anchors the page and clears its
                // DPT entry, like the simulator's post-replay ship.
                let (psn, wal_ok) = {
                    let node = self.node_mut(owner)?;
                    node.write_owned_page(&done.page)?;
                    (done.page.psn(), node.log().fully_forced())
                };
                self.trace_point(
                    owner,
                    rec_root,
                    SpanKind::PageWrite {
                        pid: done.page.id(),
                        node: owner,
                        psn,
                        wal_ok,
                    },
                );
            }
            wave_timings.push(timing);
        }
        timings.record(RecoveryPhase::Replay, lap(&mut mark));
        timings.set_replay_waves(wave_timings);

        // ---- Undo losers locally (CLRs), then checkpoint. ----
        for (c, txns) in losers {
            for txn in txns {
                let node = self.node_mut(c)?;
                node.start_abort(txn)?;
                loop {
                    match node.rollback_step(txn, Lsn::ZERO)? {
                        cblog_core::node::RollbackStep::Done => break,
                        cblog_core::node::RollbackStep::Undone(_) => {}
                        cblog_core::node::RollbackStep::NeedPage(pid) => {
                            ensure_cached(node, pid)?;
                        }
                    }
                }
                node.finish_abort(txn)?;
                report.losers_undone += 1;
            }
        }
        for &c in &crashed {
            let node = self.node_mut(c)?;
            node.force_log()?;
            node.checkpoint()?;
        }
        timings.record(RecoveryPhase::Undo, lap(&mut mark));
        timings.record(RecoveryPhase::Done, lap(&mut mark));

        for &c in &crashed {
            let reg = self.nodes[c.0 as usize].registry();
            reg.gauge(keys::RECOVERY_REPLAY_WAVES)
                .set(plan.waves.len() as i64);
            reg.gauge(keys::RECOVERY_CRITICAL_PATH_PSNS)
                .set(plan.critical_path_psns as i64);
            let widths = reg.histogram(keys::RECOVERY_WAVE_WIDTH);
            for w in &plan.waves {
                widths.record(w.len() as u64);
            }
        }
        // Replay wall time lands in the owner's `prof/replay_us`
        // gauge (lane lock waits go to `prof/lock_wait_us`), summed
        // serially across lanes like `WaveTiming::serial_us`.
        for (owner, us) in &replay_by_node {
            self.nodes[owner.0 as usize]
                .registry()
                .gauge(prof_key(Bucket::Replay))
                .add(*us as i64);
        }
        for (owner, us) in &replay_lock_wait {
            self.nodes[owner.0 as usize]
                .registry()
                .gauge(prof_key(Bucket::LockWait))
                .add(*us as i64);
        }
        report.timings = timings;
        if self.cfg.tracing {
            self.trace_check()?;
        }
        Ok(report)
    }
}

// ----------------------------------------------------------------------
// Parallel replay workers
// ----------------------------------------------------------------------

/// Lock-table token namespace for replay workers: `node << 48` tokens
/// from live transactions never reach node 0xffff.
const REPLAY_TOKEN_BASE: u64 = 0xffff_0000_0000_0000;

/// One page's redo, pre-extracted so the worker needs no `&mut Node`.
struct ReplayWork {
    pid: PageId,
    page: Page,
    records: Vec<(Psn, PageOp)>,
}

/// What one worker did to one page.
struct ReplayedUnit {
    page: Page,
    applied: u64,
    wall_us: u64,
    /// Time spent spinning for the page latch (part of `wall_us`).
    lock_wait_us: u64,
}

/// Replays one lane's units in order, latching each page exclusively
/// for the duration of its redo. Every applied record lands in the
/// lane's [`SpanBuf`] as [`SpanKind::ReplayHop`] spans — one per
/// maximal run of consecutively applied PSNs, which preserves the
/// watchdog's per-record ordering power (any non-monotone application
/// splits a run, and the out-of-order run then starts below the
/// watchdog's replay frontier).
fn replay_lane(
    locks: &ShardedLockTable,
    lane: usize,
    items: Vec<ReplayWork>,
    mut buf: SpanBuf,
    clock: WallClock,
    root: SpanId,
) -> Result<(Vec<ReplayedUnit>, SpanBuf)> {
    let token = REPLAY_TOKEN_BASE | lane as u64;
    let mut out = Vec::with_capacity(items.len());
    for mut w in items {
        let t = Instant::now();
        let waited = locks.acquire_spin_timed(w.pid, token, LockMode::Exclusive, ACQUIRE_SPINS);
        let Some(lock_wait_us) = waited else {
            return Err(Error::Protocol(format!(
                "replay worker could not latch {}",
                w.pid
            )));
        };
        let applied = apply_unit(&mut w);
        locks.release(w.pid, token);
        let from_psns = applied?;
        let owner = w.pid.owner;
        let at = clock.now_us();
        for (first, last, applied) in psn_runs(&from_psns) {
            buf.point(
                at,
                owner,
                root,
                SpanKind::ReplayHop {
                    pid: w.pid,
                    node: owner,
                    from_psn: first,
                    to_psn: last.next(),
                    applied,
                },
            );
        }
        out.push(ReplayedUnit {
            applied: from_psns.len() as u64,
            wall_us: t.elapsed().as_micros() as u64,
            lock_wait_us,
            page: w.page,
        });
    }
    Ok((out, buf))
}

/// PSN-filtered redo of one page (the filter of [`Node::replay_page`],
/// against pre-extracted records). Returns the applied PSNs in order.
fn apply_unit(w: &mut ReplayWork) -> Result<Vec<Psn>> {
    let mut from_psns = Vec::new();
    for (psn_before, op) in &w.records {
        if *psn_before == w.page.psn() {
            op.apply_redo(&mut w.page)?;
            w.page.set_psn(psn_before.next());
            from_psns.push(*psn_before);
        }
    }
    Ok(from_psns)
}

/// Maximal runs of consecutively applied PSNs, as
/// `(first, last, count)`. Correct application applies each record at
/// exactly the page's PSN, so the whole unit is one run; anything
/// else fractures into runs whose ReplayHop spans the watchdog
/// rejects.
fn psn_runs(from_psns: &[Psn]) -> Vec<(Psn, Psn, u64)> {
    let mut runs: Vec<(Psn, Psn, u64)> = Vec::new();
    for &p in from_psns {
        match runs.last_mut() {
            Some((_, last, n)) if p == last.next() => {
                *last = p;
                *n += 1;
            }
            _ => runs.push((p, p, 1)),
        }
    }
    runs
}

// ----------------------------------------------------------------------
// Worker
// ----------------------------------------------------------------------

/// Spins this many times on a contended lock (serving the inbox in
/// between) before aborting the transaction and retrying the plan.
const ACQUIRE_SPINS: usize = 20_000;
/// Retries of one plan after forced aborts before giving up.
const PLAN_RETRIES: usize = 100;
/// Patience for a remote page fetch (the owner may be mid-fsync).
const FETCH_TIMEOUT: Duration = Duration::from_secs(5);

struct WorkerOutcome {
    node: Node,
    report: RunReport,
    sent: u64,
    stats: RtNodeStats,
    buf: SpanBuf,
}

/// Wall-time profiler of one worker thread (DESIGN §14).
///
/// `outer_us` sums the top-level timed scopes of the worker loop
/// (inbox service, flushes, transaction execution, shutdown serving);
/// the leaf buckets are measured *inside* those scopes and are
/// disjoint sub-intervals of them. The derived buckets therefore keep
/// the simulator's partition invariant exactly in integer µs:
/// `busy = outer − lock_wait` and `cpu = busy − disk − net`, so
/// `disk + cpu + net == busy` by construction. Time parked in
/// `recv_timeout` between scopes (group-commit windows, shutdown
/// stragglers) is idle and deliberately unattributed.
#[derive(Clone, Copy, Debug, Default)]
struct Prof {
    outer_us: u64,
    disk_us: u64,
    net_us: u64,
    lock_wait_us: u64,
}

impl Prof {
    fn busy_us(&self) -> u64 {
        self.outer_us.saturating_sub(self.lock_wait_us)
    }

    fn cpu_us(&self) -> u64 {
        self.busy_us()
            .saturating_sub(self.disk_us)
            .saturating_sub(self.net_us)
    }
}

/// One MPL lane: its plans run sequentially; the worker interleaves
/// lanes so several commits can park in the force scheduler at once.
struct Lane {
    plans: Vec<TxnPlan>,
    next: usize,
    /// Parked commit: (txn, submit time, lock token).
    waiting: Option<(TxnId, SimTime, u64)>,
    retries: usize,
}

fn token_of(txn: TxnId) -> u64 {
    ((txn.node.0 as u64) << 48) | (txn.seq & 0xffff_ffff_ffff)
}

fn encode_pid(pid: PageId) -> Vec<u8> {
    pid.to_u64().to_le_bytes().to_vec()
}

fn decode_pid(payload: &[u8]) -> Result<PageId> {
    let bytes: [u8; 8] = payload
        .try_into()
        .map_err(|_| Error::Protocol("bad page-fetch payload".into()))?;
    Ok(PageId::from_u64(u64::from_le_bytes(bytes)))
}

#[allow(clippy::too_many_arguments)]
fn run_worker(
    mut node: Node,
    ep: ChannelEndpoint,
    locks: Arc<ShardedLockTable>,
    plans: Vec<TxnPlan>,
    policy: GroupCommitPolicy,
    clock: WallClock,
    remaining: Arc<AtomicUsize>,
    latency: Histogram,
    samples: Reservoir,
    mut buf: SpanBuf,
) -> Result<WorkerOutcome> {
    let mut sched = ForceScheduler::new(policy);
    let mut report = RunReport::default();
    let started = Instant::now();
    let mut prof = Prof::default();
    let mut forced_bytes = node.log().bytes_written();
    macro_rules! outer {
        ($e:expr) => {{
            let t = Instant::now();
            let r = $e;
            prof.outer_us += t.elapsed().as_micros() as u64;
            r
        }};
    }

    // Bucket plans into lanes, preserving per-lane order.
    let mut lanes: Vec<Lane> = Vec::new();
    let mut lane_ids: Vec<usize> = Vec::new();
    for plan in plans {
        let idx = match lane_ids.iter().position(|&s| s == plan.stream) {
            Some(i) => i,
            None => {
                lane_ids.push(plan.stream);
                lanes.push(Lane {
                    plans: Vec::new(),
                    next: 0,
                    waiting: None,
                    retries: 0,
                });
                lanes.len() - 1
            }
        };
        lanes[idx].plans.push(plan);
    }

    let mut finished = lanes.is_empty();
    if finished {
        remaining.fetch_sub(1, Ordering::AcqRel);
    }
    loop {
        outer!(serve_inbox(&mut node, &ep, &clock, &mut prof, &mut buf)?);
        if sched.is_due(clock.now_us()) {
            outer!(flush(
                &mut node,
                &mut sched,
                &mut lanes,
                &locks,
                &clock,
                &latency,
                &samples,
                &mut report,
                &mut prof,
                &mut buf,
                &mut forced_bytes,
            )?);
        }

        let mut progressed = false;
        let mut live = false;
        for li in 0..lanes.len() {
            if lanes[li].waiting.is_some() {
                live = true;
                continue;
            }
            if lanes[li].next >= lanes[li].plans.len() {
                continue;
            }
            live = true;
            let plan = lanes[li].plans[lanes[li].next].clone();
            let outcome = outer!(run_txn(
                &mut node,
                &ep,
                &locks,
                &clock,
                &plan,
                &mut sched,
                &mut report,
                &mut prof,
                &mut buf,
            )?);
            match outcome {
                TxnOutcome::Committing(txn, at) => {
                    lanes[li].waiting = Some((txn, at, token_of(txn)));
                    lanes[li].retries = 0;
                }
                TxnOutcome::Done => {
                    lanes[li].next += 1;
                    lanes[li].retries = 0;
                }
                TxnOutcome::Retry => {
                    lanes[li].retries += 1;
                    if lanes[li].retries > PLAN_RETRIES {
                        return Err(Error::Protocol(format!(
                            "{} lane {} livelocked on plan {}",
                            node.id(),
                            lane_ids[li],
                            lanes[li].next
                        )));
                    }
                }
            }
            progressed = true;
        }

        if !live {
            // All lanes done. Force out any stragglers, then keep
            // serving page fetches until every node is done too.
            while sched.pending_len() > 0 {
                outer!(flush(
                    &mut node,
                    &mut sched,
                    &mut lanes,
                    &locks,
                    &clock,
                    &latency,
                    &samples,
                    &mut report,
                    &mut prof,
                    &mut buf,
                    &mut forced_bytes,
                )?);
            }
            if !finished {
                finished = true;
                remaining.fetch_sub(1, Ordering::AcqRel);
            }
            if remaining.load(Ordering::Acquire) == 0 {
                break;
            }
            if let Some(env) = ep.recv_timeout(Duration::from_micros(500)) {
                outer!(serve(&mut node, &ep, env, &clock, &mut prof, &mut buf)?);
            }
            continue;
        }

        if !progressed {
            // Every live lane is parked on a group-commit window.
            let now = clock.now_us();
            if sched.is_due(now) {
                outer!(flush(
                    &mut node,
                    &mut sched,
                    &mut lanes,
                    &locks,
                    &clock,
                    &latency,
                    &samples,
                    &mut report,
                    &mut prof,
                    &mut buf,
                    &mut forced_bytes,
                )?);
            } else if let Some(d) = sched.deadline() {
                let wait = d.saturating_sub(now).clamp(1, 5_000);
                if let Some(env) = ep.recv_timeout(Duration::from_micros(wait)) {
                    outer!(serve(&mut node, &ep, env, &clock, &mut prof, &mut buf)?);
                }
            }
        }
    }

    ep.drain();
    Ok(WorkerOutcome {
        stats: RtNodeStats {
            node: node.id().0,
            wall_us: started.elapsed().as_micros() as u64,
            busy_us: prof.busy_us(),
            disk_us: prof.disk_us,
            net_us: prof.net_us,
            cpu_us: prof.cpu_us(),
            lock_wait_us: prof.lock_wait_us,
            replay_us: 0,
        },
        node,
        report,
        sent: ep.sent(),
        buf,
    })
}

enum TxnOutcome {
    /// Commit record appended; parked in the scheduler.
    Committing(TxnId, SimTime),
    /// Plan consumed (user abort completed).
    Done,
    /// Forced abort (lock conflict); plan not consumed.
    Retry,
}

/// Closes a transaction's span with its outcome and duration.
/// `committed: true` is recorded at `commit_begin` — the commit record
/// exists and the group force is scheduled; the worker loop never
/// exits with an unforced commit, so the label is safe within a run.
fn end_txn_span(
    buf: &mut SpanBuf,
    id: SpanId,
    node: NodeId,
    start: SimTime,
    now: SimTime,
    txn: TxnId,
    committed: bool,
) {
    if id.is_none() {
        return;
    }
    buf.emit(Span {
        id,
        parent: SpanId::NONE,
        node,
        start,
        dur: now.saturating_sub(start),
        kind: SpanKind::Txn { txn, committed },
    });
}

#[allow(clippy::too_many_arguments)]
fn run_txn(
    node: &mut Node,
    ep: &ChannelEndpoint,
    locks: &ShardedLockTable,
    clock: &WallClock,
    plan: &TxnPlan,
    sched: &mut ForceScheduler,
    report: &mut RunReport,
    prof: &mut Prof,
    buf: &mut SpanBuf,
) -> Result<TxnOutcome> {
    let me = node.id();
    let txn = node.begin()?;
    let token = token_of(txn);
    let t_start = clock.now_us();
    let span = buf.alloc();
    for op in &plan.ops {
        let (pid, mode) = match *op {
            PlanOp::Read { pid, .. } => (pid, LockMode::Shared),
            PlanOp::Write { pid, .. } => (pid, LockMode::Exclusive),
        };
        if mode == LockMode::Exclusive && pid.owner != me {
            abort_txn(node, ep, locks, txn, token)?;
            return Err(Error::Protocol(format!(
                "{me} plan writes remote page {pid}: the threaded runtime only writes owned pages"
            )));
        }
        if !acquire(node, ep, locks, pid, token, mode, clock, prof, buf)? {
            abort_txn(node, ep, locks, txn, token)?;
            report.forced_aborts += 1;
            end_txn_span(buf, span, me, t_start, clock.now_us(), txn, false);
            return Ok(TxnOutcome::Retry);
        }
        match *op {
            PlanOp::Read { pid, slot } => {
                if pid.owner == me {
                    ensure_cached(node, pid)?;
                    node.peek_slot(pid, slot).ok_or(Error::NoSuchPage(pid))?;
                } else {
                    remote_read(node, ep, pid, slot, span, clock, prof, buf)?;
                }
            }
            PlanOp::Write { pid, slot, value } => {
                ensure_cached(node, pid)?;
                let before = node.peek_slot(pid, slot).ok_or(Error::NoSuchPage(pid))?;
                // The watchdog checks the pre-update PSN edge, so read
                // it before `log_update` bumps it.
                let psn_before = node
                    .buffer()
                    .peek(pid)
                    .map(|p| p.psn())
                    .unwrap_or(Psn::ZERO);
                node.log_update(
                    txn,
                    pid,
                    PageOp::WriteRange {
                        off: (slot * 8) as u32,
                        before: before.to_le_bytes().to_vec(),
                        after: value.to_le_bytes().to_vec(),
                    },
                )?;
                let lsn = node.txn(txn).map(|t| t.last_lsn).unwrap_or(Lsn::ZERO);
                buf.point(
                    clock.now_us(),
                    me,
                    span,
                    SpanKind::Update {
                        pid,
                        txn,
                        psn: psn_before,
                        lsn,
                        clr: false,
                    },
                );
            }
        }
        report.ops_executed += 1;
    }
    if plan.abort {
        abort_txn(node, ep, locks, txn, token)?;
        report.user_aborts += 1;
        end_txn_span(buf, span, me, t_start, clock.now_us(), txn, false);
        return Ok(TxnOutcome::Done);
    }
    let lsn = node.commit_begin(txn)?;
    // Strict 2PL releases transaction locks at commit_begin; the same
    // early release is safe here because cross-thread visibility of
    // this transaction's updates requires a page ship, and the serving
    // path forces the whole log first (WAL rule).
    locks.release_all(token);
    let now = clock.now_us();
    sched.submit(txn, lsn, now);
    end_txn_span(buf, span, me, t_start, now, txn, true);
    Ok(TxnOutcome::Committing(txn, now))
}

/// Forces the log and acknowledges every commit the force covered.
/// The force itself is attributed to `disk` (on a file-backed WAL it
/// is a real `fdatasync`); ack bookkeeping stays in the enclosing
/// scope's `cpu` remainder. An acknowledging force emits a
/// [`SpanKind::GroupForce`] span covering the batch.
#[allow(clippy::too_many_arguments)]
fn flush(
    node: &mut Node,
    sched: &mut ForceScheduler,
    lanes: &mut [Lane],
    locks: &ShardedLockTable,
    clock: &WallClock,
    latency: &Histogram,
    samples: &Reservoir,
    report: &mut RunReport,
    prof: &mut Prof,
    buf: &mut SpanBuf,
    forced_bytes: &mut u64,
) -> Result<()> {
    let pending = node.log().bytes_written().saturating_sub(*forced_bytes);
    let ft = Instant::now();
    node.force_log()?;
    prof.disk_us += ft.elapsed().as_micros() as u64;
    *forced_bytes = node.log().bytes_written();
    let flushed = node.log().flushed_lsn();
    let mut acked = 0u64;
    for txn in sched.drain_acked(flushed) {
        node.finish_commit(txn)?;
        report.committed += 1;
        acked += 1;
        let now = clock.now_us();
        for lane in lanes.iter_mut() {
            if let Some((w, at, token)) = lane.waiting {
                if w == txn {
                    let d = now.saturating_sub(at);
                    latency.record(d);
                    samples.record(d);
                    // Locks were released at commit_begin; the token is
                    // kept only for debugging, clear defensively.
                    locks.release_all(token);
                    lane.waiting = None;
                    lane.next += 1;
                    break;
                }
            }
        }
    }
    if acked > 0 {
        buf.point(
            clock.now_us(),
            node.id(),
            SpanId::NONE,
            SpanKind::GroupForce {
                node: node.id(),
                txns: acked,
                bytes: pending,
            },
        );
    }
    Ok(())
}

/// Takes `pid` for `token`, serving incoming page fetches while it
/// spins so two nodes waiting on each other's service cannot deadlock.
/// The spin time — minus the nested service work, which lands in its
/// own buckets — is attributed to `lock_wait`.
#[allow(clippy::too_many_arguments)]
fn acquire(
    node: &mut Node,
    ep: &ChannelEndpoint,
    locks: &ShardedLockTable,
    pid: PageId,
    token: u64,
    mode: LockMode,
    clock: &WallClock,
    prof: &mut Prof,
    buf: &mut SpanBuf,
) -> Result<bool> {
    if locks.try_acquire(pid, token, mode) {
        return Ok(true);
    }
    let t = Instant::now();
    let leaf0 = prof.disk_us + prof.net_us;
    let mut won = false;
    for i in 0..ACQUIRE_SPINS {
        if locks.try_acquire(pid, token, mode) {
            won = true;
            break;
        }
        serve_inbox(node, ep, clock, prof, buf)?;
        if i % 64 == 63 {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
    let nested = (prof.disk_us + prof.net_us).saturating_sub(leaf0);
    prof.lock_wait_us += (t.elapsed().as_micros() as u64).saturating_sub(nested);
    Ok(won)
}

fn abort_txn(
    node: &mut Node,
    _ep: &ChannelEndpoint,
    locks: &ShardedLockTable,
    txn: TxnId,
    token: u64,
) -> Result<()> {
    node.start_abort(txn)?;
    loop {
        match node.rollback_step(txn, Lsn::ZERO)? {
            cblog_core::node::RollbackStep::Done => break,
            cblog_core::node::RollbackStep::Undone(_) => {}
            cblog_core::node::RollbackStep::NeedPage(pid) => {
                ensure_cached(node, pid)?;
            }
        }
    }
    node.finish_abort(txn)?;
    locks.release_all(token);
    Ok(())
}

/// Brings an owned page into the buffer (from disk if necessary). The
/// buffer is sized above the working set, so eviction of a dirty page
/// is an overflow error rather than a silent correctness hazard.
fn ensure_cached(node: &mut Node, pid: PageId) -> Result<()> {
    if node.buffer().contains(pid) {
        return Ok(());
    }
    let (page, _) = node.authoritative_copy(pid)?;
    if let Some(ev) = node.cache_page(page, false)? {
        if ev.dirty {
            return Err(Error::Protocol(format!(
                "{} buffer overflow evicted dirty page {}: raise buffer_frames",
                node.id(),
                ev.page.id()
            )));
        }
    }
    Ok(())
}

/// Fetches a remote page image from its owner and reads one slot. The
/// image is used once and dropped — without callback locking there is
/// no safe way to keep it cached past the transaction's S lock.
///
/// The fetch is traced as a [`SpanKind::Msg`] whose id rides the
/// envelope header, so the owner's Transfer/ship spans parent on it
/// and the causal chain crosses the mesh exactly as in the simulator.
/// The blocking wait for the reply is attributed to `net`; nested
/// service of other nodes' fetches lands in its own buckets.
#[allow(clippy::too_many_arguments)]
fn remote_read(
    node: &mut Node,
    ep: &ChannelEndpoint,
    pid: PageId,
    slot: usize,
    parent: SpanId,
    clock: &WallClock,
    prof: &mut Prof,
    buf: &mut SpanBuf,
) -> Result<u64> {
    let t = Instant::now();
    let leaf0 = prof.disk_us + prof.net_us;
    let me = node.id();
    let payload = encode_pid(pid);
    let nbytes = payload.len() as u64;
    let msg = buf.alloc();
    ep.send_ctx(
        pid.owner,
        MsgKind::LockRequest,
        payload,
        SpanCtx::child(msg, parent),
    )?;
    if !msg.is_none() {
        buf.emit(Span {
            id: msg,
            parent,
            node: me,
            start: clock.now_us(),
            dur: 0,
            kind: SpanKind::Msg {
                kind: MsgKind::LockRequest.label(),
                from: me,
                to: pid.owner,
                bytes: nbytes,
                carries_log: false,
            },
        });
    }
    let deadline = Instant::now() + FETCH_TIMEOUT;
    let value = loop {
        match ep.recv_timeout(Duration::from_millis(1)) {
            Some(env) if env.kind == MsgKind::PageShip => {
                let page = Page::from_bytes(env.payload)?;
                if page.id() == pid {
                    break page.read_slot(slot);
                }
                // A ship we did not ask for; workers have one fetch in
                // flight at a time, so this cannot happen — drop it.
            }
            Some(env) => serve(node, ep, env, clock, prof, buf)?,
            None => {
                if Instant::now() >= deadline {
                    return Err(Error::Protocol(format!("page fetch of {pid} timed out")));
                }
            }
        }
    };
    let nested = (prof.disk_us + prof.net_us).saturating_sub(leaf0);
    prof.net_us += (t.elapsed().as_micros() as u64).saturating_sub(nested);
    value
}

fn serve_inbox(
    node: &mut Node,
    ep: &ChannelEndpoint,
    clock: &WallClock,
    prof: &mut Prof,
    buf: &mut SpanBuf,
) -> Result<()> {
    while let Some(env) = ep.try_recv() {
        serve(node, ep, env, clock, prof, buf)?;
    }
    Ok(())
}

/// Owner-side service: ship the authoritative image of an owned page.
/// If the buffer copy is dirty, the WAL rule applies — our log records
/// may cover its updates, so force the log before the image escapes
/// the node. The force is attributed to `disk` and the rest of the
/// service to `net`; the ship is traced as Transfer + Msg spans
/// parented on the requester's message span.
fn serve(
    node: &mut Node,
    ep: &ChannelEndpoint,
    env: Envelope,
    clock: &WallClock,
    prof: &mut Prof,
    buf: &mut SpanBuf,
) -> Result<()> {
    let t = Instant::now();
    let mut force_us = 0u64;
    match env.kind {
        MsgKind::LockRequest => {
            let pid = decode_pid(&env.payload)?;
            let dirty = node.buffer().is_dirty(pid) == Some(true);
            if dirty {
                let ft = Instant::now();
                node.force_log()?;
                force_us = ft.elapsed().as_micros() as u64;
            }
            let (page, _) = node.authoritative_copy(pid)?;
            let me = node.id();
            let at = clock.now_us();
            // WAL rule at the sender: a dirty image leaves only after
            // the force above; a clean image is trivially covered.
            let wal_ok = !dirty || node.log().fully_forced();
            buf.point(
                at,
                me,
                env.ctx.span,
                SpanKind::Transfer {
                    pid,
                    from: me,
                    to: env.from,
                    psn: page.psn(),
                    why: TransferWhy::Ship,
                    wal_ok,
                },
            );
            let bytes = page.to_bytes();
            let nbytes = bytes.len() as u64;
            let msg = buf.alloc();
            ep.send_ctx(
                env.from,
                MsgKind::PageShip,
                bytes,
                SpanCtx::child(msg, env.ctx.span),
            )?;
            if !msg.is_none() {
                buf.emit(Span {
                    id: msg,
                    parent: env.ctx.span,
                    node: me,
                    start: at,
                    dur: 0,
                    kind: SpanKind::Msg {
                        kind: MsgKind::PageShip.label(),
                        from: me,
                        to: env.from,
                        bytes: nbytes,
                        carries_log: false,
                    },
                });
            }
        }
        other => {
            return Err(Error::Protocol(format!(
                "threaded runtime got unexpected {other:?} message"
            )));
        }
    }
    prof.disk_us += force_us;
    prof.net_us += (t.elapsed().as_micros() as u64).saturating_sub(force_us);
    Ok(())
}

/// Serializes the per-node profile as the `"nodes":[…],"folded":[…]`
/// JSON fragment shared by every threaded-runtime telemetry export
/// (`rtbench`, `obsreport --compare`) — the same skeleton the
/// simulator's `export_json` emits, so one renderer draws both.
///
/// The folded lines are `flamegraph.pl` input: `label;n<id>;<bucket>`
/// frames weighted by measured µs. Zero buckets are elided, matching
/// the simulator's export.
pub fn profile_fragment(label: &str, nodes: &[RtNodeStats]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("\"nodes\":[");
    for (i, n) in nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let util = (n.busy_us * 100).checked_div(n.wall_us).unwrap_or(0);
        let _ = write!(
            out,
            "{{\"node\":{},\"busy_us\":{},\"total_us\":{},\"utilization_pct\":{util},\"buckets\":{{\"disk\":{},\"cpu\":{},\"net\":{},\"lock_wait\":{},\"replay\":{}}}}}",
            n.node, n.busy_us, n.wall_us, n.disk_us, n.cpu_us, n.net_us, n.lock_wait_us, n.replay_us
        );
    }
    out.push_str("],\"folded\":[");
    let mut first = true;
    for n in nodes {
        for (bucket, us) in [
            (Bucket::Disk, n.disk_us),
            (Bucket::Cpu, n.cpu_us),
            (Bucket::Net, n.net_us),
            (Bucket::LockWait, n.lock_wait_us),
            (Bucket::Replay, n.replay_us),
        ] {
            if us == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\"{};n{};{} {us}\"",
                cblog_common::obs::json_escape(label),
                n.node,
                bucket.label()
            );
        }
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(owner: u32, index: u32) -> PageId {
        PageId::new(NodeId(owner), index)
    }

    fn wplan(client: u32, stream: usize, writes: &[(PageId, usize, u64)]) -> TxnPlan {
        TxnPlan {
            client: NodeId(client),
            stream,
            ops: writes
                .iter()
                .map(|&(pid, slot, value)| PlanOp::Write { pid, slot, value })
                .collect(),
            abort: false,
        }
    }

    #[test]
    fn two_threaded_nodes_commit_locally() {
        let mut tc = ThreadCluster::new(ThreadClusterConfig::default()).unwrap();
        let plans = vec![
            wplan(0, 0, &[(pid(0, 0), 0, 11)]),
            wplan(1, 0, &[(pid(1, 0), 0, 22)]),
        ];
        let report = tc.run(&plans).unwrap();
        assert_eq!(report.committed, 2);
        assert_eq!(report.forced_aborts, 0);
        let stats = tc.last_stats().unwrap();
        assert_eq!(stats.commit_msgs, 0, "commit path sends no messages");
        assert_eq!(stats.msgs, 0, "purely local plans need no traffic at all");
        assert!(stats.forces >= 2, "each commit forced its local log");

        let img = tc.page_image(pid(0, 0)).unwrap();
        let page = Page::from_bytes(img).unwrap();
        assert_eq!(page.read_slot(0).unwrap(), 11);
    }

    #[test]
    fn remote_read_crosses_the_mesh() {
        let mut tc = ThreadCluster::new(ThreadClusterConfig::default()).unwrap();
        // Node 0 commits a value; then node 1 reads it remotely.
        let report = tc.run(&[wplan(0, 0, &[(pid(0, 3), 2, 77)])]).unwrap();
        assert_eq!(report.committed, 1);
        let plans = vec![TxnPlan {
            client: NodeId(1),
            stream: 0,
            ops: vec![PlanOp::Read {
                pid: pid(0, 3),
                slot: 2,
            }],
            abort: false,
        }];
        let report = tc.run(&plans).unwrap();
        assert_eq!(report.committed, 1);
        let stats = tc.last_stats().unwrap();
        assert_eq!(stats.msgs, 2, "one fetch request, one page ship");
        assert_eq!(stats.commit_msgs, 0);
    }

    #[test]
    fn user_abort_rolls_back_on_a_real_thread() {
        let mut tc = ThreadCluster::new(ThreadClusterConfig::default()).unwrap();
        let setup = tc.run(&[wplan(0, 0, &[(pid(0, 1), 0, 5)])]).unwrap();
        assert_eq!(setup.committed, 1);
        let plans = vec![TxnPlan {
            client: NodeId(0),
            stream: 0,
            ops: vec![PlanOp::Write {
                pid: pid(0, 1),
                slot: 0,
                value: 99,
            }],
            abort: true,
        }];
        let report = tc.run(&plans).unwrap();
        assert_eq!(report.committed, 0);
        assert_eq!(report.user_aborts, 1);
        let page = Page::from_bytes(tc.page_image(pid(0, 1)).unwrap()).unwrap();
        assert_eq!(page.read_slot(0).unwrap(), 5, "abort undone");
    }

    #[test]
    fn file_backed_wals_sync_for_real() {
        let dir = std::env::temp_dir().join(format!(
            "cblog-rt-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut tc = ThreadCluster::new(ThreadClusterConfig {
            owned_pages: vec![4, 4],
            wal: WalBacking::Dir(dir.clone()),
            ..ThreadClusterConfig::default()
        })
        .unwrap();
        let report = tc
            .run(&[
                wplan(0, 0, &[(pid(0, 0), 0, 1)]),
                wplan(1, 0, &[(pid(1, 0), 0, 2)]),
            ])
            .unwrap();
        assert_eq!(report.committed, 2);
        assert!(dir.join("node0.wal").exists());
        assert!(dir.join("node1.wal").exists());
        assert!(
            std::fs::metadata(dir.join("node0.wal")).unwrap().len() > 0,
            "commit records reached the file"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn window_policy_batches_forces_across_lanes() {
        let mut tc = ThreadCluster::new(ThreadClusterConfig {
            owned_pages: vec![16],
            group_commit: GroupCommitPolicy::Window {
                window_us: 2_000,
                max_batch: 4,
            },
            ..ThreadClusterConfig::default()
        })
        .unwrap();
        // 4 lanes × 4 txns, each lane on its own page: commits park
        // together, so forces come out well below one per commit.
        let mut plans = Vec::new();
        for lane in 0..4usize {
            for t in 0..4u64 {
                plans.push(wplan(0, lane, &[(pid(0, lane as u32), 0, t + 1)]));
            }
        }
        let report = tc.run(&plans).unwrap();
        assert_eq!(report.committed, 16);
        let stats = tc.last_stats().unwrap();
        assert!(
            stats.forces <= 8,
            "expected batched forces, got {} for 16 commits",
            stats.forces
        );
        let snap = tc.latency().snapshot();
        assert_eq!(snap.count, 16, "every commit's latency was recorded");
    }
}
