//! Threaded execution runtime: real threads, real fsync, real clock.
//!
//! The simulator ([`cblog_core::Cluster`]) runs the CBL protocol on a
//! simulated clock with in-memory stores — deterministic, and the
//! correctness oracle for everything here. This crate runs the *same*
//! per-node protocol machinery ([`cblog_core::Node`]) under real
//! concurrency:
//!
//! * **one OS thread per node** — each worker owns its `Node` (moved
//!   into the thread; `Node: Send` is asserted in core) and drives its
//!   MPL transaction streams;
//! * **file-backed WALs** — each node's log lives on a
//!   [`FileLogStore`], so a log force is an actual `fdatasync`;
//! * **channel transport** — inter-node traffic crosses threads over
//!   [`cblog_net::transport::ChannelMesh`] (per-link FIFO, accounted);
//! * **wall-clock group commit** — the per-node
//!   [`ForceScheduler`] from core is time-source agnostic (it takes
//!   `now` in µs), so the exact same Immediate/Window/Adaptive batching
//!   logic runs here against a [`WallClock`];
//! * **sharded page locks** — one process-wide
//!   [`ShardedLockTable`] gives strict 2PL across all worker threads
//!   without a global mutex.
//!
//! The paper's headline property survives the move to real threads
//! unchanged: a commit is one local log force and **zero messages** —
//! the only traffic on the mesh is read-path page fetching.
//!
//! # Scope
//!
//! Writes must target pages owned by the writing node; remote pages
//! are readable (fetched from the owner over the transport, S-locked
//! for the duration of the transaction). Remote *writes* need the full
//! callback-locking / page-replacement machinery, which today only the
//! simulator drives; plans containing them are rejected rather than
//! half-supported.
//!
//! # Correctness anchor
//!
//! `tests/equivalence.rs` runs identical seeded plan lists on both
//! engines and asserts the final page images are byte-identical and
//! the commit tallies equal. With per-stream-private write sets the
//! final state is interleaving-independent, so any divergence is an
//! engine bug, not scheduling noise.

use cblog_common::metrics::keys;
use cblog_common::{
    Error, Histogram, Lsn, MetricValue, NodeId, PageId, Psn, RecoveryPhase, Result, SimTime,
    Snapshot, TxnId,
};
use cblog_core::{
    plan_replay, ForceScheduler, GroupCommitPolicy, Node, NodeConfig, NodePsnEntry, PhaseTimings,
    PlanOp, RecoveryOptions, RecoveryReport, RunReport, Runtime, TxnPlan, WaveTiming,
};
use cblog_locks::{LockMode, ShardedLockTable};
use cblog_net::transport::{ChannelEndpoint, ChannelMesh, Envelope, Transport};
use cblog_net::MsgKind;
use cblog_storage::Page;
use cblog_wal::{FileLogStore, LogStore, MemLogStore, PageOp};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wall-clock time source, µs since construction. The value feeds the
/// same [`ForceScheduler`] interfaces the simulator feeds sim-µs into.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// Clock starting at 0 now.
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }

    /// Microseconds elapsed since construction.
    pub fn now_us(&self) -> SimTime {
        self.epoch.elapsed().as_micros() as SimTime
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

/// Where each node's WAL lives.
#[derive(Clone, Debug)]
pub enum WalBacking {
    /// In-memory log store (tests; no real fsync).
    Mem,
    /// One `node<i>.wal` file per node inside this directory, opened
    /// as a [`FileLogStore`]: forces are real `fdatasync`s.
    Dir(PathBuf),
}

/// Configuration of a threaded cluster.
#[derive(Clone, Debug)]
pub struct ThreadClusterConfig {
    /// Pages owned by each node; length = node count.
    pub owned_pages: Vec<u32>,
    /// Page size in bytes.
    pub page_size: usize,
    /// Buffer frames per node (size above the working set: the
    /// threaded runtime treats eviction of a dirty page as overflow).
    pub buffer_frames: usize,
    /// Group-commit policy, shared by every node.
    pub group_commit: GroupCommitPolicy,
    /// Shards in the process-wide lock table.
    pub lock_shards: usize,
    /// WAL backing for every node.
    pub wal: WalBacking,
}

impl Default for ThreadClusterConfig {
    fn default() -> Self {
        ThreadClusterConfig {
            owned_pages: vec![16, 16],
            page_size: 1024,
            buffer_frames: 256,
            group_commit: GroupCommitPolicy::Immediate,
            lock_shards: 16,
            wal: WalBacking::Mem,
        }
    }
}

/// Per-run aggregates beyond the [`RunReport`] tally.
#[derive(Clone, Copy, Debug, Default)]
pub struct RtRunStats {
    /// Wall time of the run, µs.
    pub wall_us: u64,
    /// Log forces summed over nodes (delta for this run).
    pub forces: u64,
    /// Messages crossing the mesh (all read-path).
    pub msgs: u64,
    /// Messages on the commit path — zero by construction; reported
    /// so benchmarks can assert the paper's headline property.
    pub commit_msgs: u64,
    /// Median commit latency (submit → durable ack), µs.
    pub p50_us: u64,
    /// Tail commit latency, µs.
    pub p99_us: u64,
}

/// Coarse wall-time split of one worker thread, for observability
/// exports. Buckets are approximate (nested service work counts
/// toward the enclosing activity): `disk` wraps log forces, `net`
/// top-level message service, `cpu` transaction execution; the rest of
/// the wall time is idle waiting.
#[derive(Clone, Copy, Debug, Default)]
pub struct RtNodeStats {
    /// Node id.
    pub node: u32,
    /// Worker wall time, µs.
    pub wall_us: u64,
    /// Time inside log forces (fsync), µs.
    pub disk_us: u64,
    /// Time serving page fetches at top level, µs.
    pub net_us: u64,
    /// Time executing transactions, µs.
    pub cpu_us: u64,
}

/// A set of OS-thread nodes executing [`TxnPlan`]s.
pub struct ThreadCluster {
    cfg: ThreadClusterConfig,
    nodes: Vec<Node>,
    locks: Arc<ShardedLockTable>,
    latency: Histogram,
    last: Option<RtRunStats>,
    last_nodes: Vec<RtNodeStats>,
}

impl ThreadCluster {
    /// Builds the nodes (and their WAL files, for
    /// [`WalBacking::Dir`]).
    pub fn new(cfg: ThreadClusterConfig) -> Result<Self> {
        let mut nodes = Vec::with_capacity(cfg.owned_pages.len());
        for (i, &owned) in cfg.owned_pages.iter().enumerate() {
            let ncfg = NodeConfig {
                page_size: cfg.page_size,
                buffer_frames: cfg.buffer_frames,
                owned_pages: owned,
                log_capacity: None,
            };
            let store: Box<dyn LogStore> = match &cfg.wal {
                WalBacking::Mem => Box::new(MemLogStore::new()),
                WalBacking::Dir(dir) => {
                    std::fs::create_dir_all(dir)?;
                    Box::new(FileLogStore::open(&dir.join(format!("node{i}.wal")))?)
                }
            };
            nodes.push(Node::with_log_store(NodeId(i as u32), ncfg, store)?);
        }
        let locks = Arc::new(ShardedLockTable::new(cfg.lock_shards));
        Ok(ThreadCluster {
            cfg,
            nodes,
            locks,
            latency: Histogram::new(),
            last: None,
            last_nodes: Vec::new(),
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.cfg.owned_pages.len()
    }

    /// Aggregates of the most recent [`Runtime::run`].
    pub fn last_stats(&self) -> Option<RtRunStats> {
        self.last
    }

    /// Per-worker wall-time split of the most recent run, ordered by
    /// node id.
    pub fn last_node_stats(&self) -> &[RtNodeStats] {
        &self.last_nodes
    }

    /// The shared commit-latency histogram (µs, submit → durable).
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// Crashes `node`: its volatile state (buffer, DPT, transaction
    /// table, unforced log tail) is lost; the database file and the
    /// durable WAL survive. Follow with [`Runtime::recover`].
    pub fn crash(&mut self, node: NodeId) -> Result<()> {
        let i = node.0 as usize;
        if i >= self.nodes.len() {
            return Err(Error::Invalid(format!("crash of unknown node {node}")));
        }
        self.nodes[i].crash();
        Ok(())
    }

    fn node_mut(&mut self, id: NodeId) -> Result<&mut Node> {
        let i = id.0 as usize;
        self.nodes
            .get_mut(i)
            .ok_or_else(|| Error::Invalid(format!("unknown node {id}")))
    }
}

impl Runtime for ThreadCluster {
    fn name(&self) -> &'static str {
        "threads"
    }

    fn run(&mut self, plans: &[TxnPlan]) -> Result<RunReport> {
        let n = self.node_count();
        let mut per_node: Vec<Vec<TxnPlan>> = vec![Vec::new(); n];
        for plan in plans {
            let i = plan.client.0 as usize;
            if i >= n {
                return Err(Error::Invalid(format!(
                    "plan for unknown node {}",
                    plan.client
                )));
            }
            per_node[i].push(plan.clone());
        }

        let endpoints = ChannelMesh::endpoints(n);
        let nodes = std::mem::take(&mut self.nodes);
        let forces_before: u64 = nodes.iter().map(|nd| nd.log().forces()).sum();
        let remaining = Arc::new(AtomicUsize::new(n));
        let clock = WallClock::new();
        let started = Instant::now();

        let outcomes: Vec<Result<WorkerOutcome>> = std::thread::scope(|s| {
            let handles: Vec<_> = nodes
                .into_iter()
                .zip(endpoints)
                .zip(per_node)
                .map(|((node, ep), plans)| {
                    let locks = Arc::clone(&self.locks);
                    let remaining = Arc::clone(&remaining);
                    let latency = self.latency.clone();
                    let policy = self.cfg.group_commit;
                    s.spawn(move || {
                        run_worker(node, ep, locks, plans, policy, clock, remaining, latency)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(_) => Err(Error::Protocol("worker thread panicked".into())),
                })
                .collect()
        });

        let wall_us = started.elapsed().as_micros() as u64;
        let mut report = RunReport::default();
        let mut msgs = 0;
        let mut restored = Vec::with_capacity(n);
        let mut node_stats = Vec::with_capacity(n);
        let mut first_err = None;
        for outcome in outcomes {
            match outcome {
                Ok(o) => {
                    report.committed += o.report.committed;
                    report.user_aborts += o.report.user_aborts;
                    report.forced_aborts += o.report.forced_aborts;
                    report.ops_executed += o.report.ops_executed;
                    msgs += o.sent;
                    node_stats.push(RtNodeStats {
                        node: o.node.id().0,
                        ..o.stats
                    });
                    restored.push(o.node);
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        restored.sort_by_key(|nd| nd.id().0);
        node_stats.sort_by_key(|s| s.node);
        self.nodes = restored;
        self.last_nodes = node_stats;

        let forces_after: u64 = self.nodes.iter().map(|nd| nd.log().forces()).sum();
        let snap = self.latency.snapshot();
        self.last = Some(RtRunStats {
            wall_us,
            forces: forces_after - forces_before,
            msgs,
            commit_msgs: 0,
            p50_us: snap.percentile(50.0),
            p99_us: snap.percentile(99.0),
        });
        Ok(report)
    }

    fn page_image(&mut self, pid: PageId) -> Result<Vec<u8>> {
        let i = pid.owner.0 as usize;
        if i >= self.nodes.len() {
            return Err(Error::NoSuchPage(pid));
        }
        self.nodes[i].page_image(pid)
    }

    fn metrics(&self) -> Snapshot {
        let mut out = Snapshot::default();
        for node in &self.nodes {
            out.merge_prefixed(&format!("n{}/", node.id().0), node.registry().snapshot());
        }
        out.entries.insert(
            "rt/commit_latency_us".into(),
            MetricValue::Histogram(Box::new(self.latency.snapshot())),
        );
        out
    }

    /// Crash recovery under real concurrency. The threaded runtime
    /// only writes owned pages, so every update record for a page
    /// lives in its owner's WAL — the [`plan_replay`] dependency graph
    /// degenerates to independent per-page chains and Redo is
    /// embarrassingly parallel: each wave's units are latched and
    /// replayed by [`ReplayMode::Parallel`](cblog_core::ReplayMode)
    /// worker threads. The per-page PSN-order invariant the simulator's
    /// span watchdog enforces is checked here post-join from the
    /// workers' hop observations (the tracer is single-threaded and
    /// sim-only).
    fn recover(&mut self, opts: &RecoveryOptions) -> Result<RecoveryReport> {
        let crashed = opts.recovered_nodes().to_vec();
        for &c in &crashed {
            if c.0 as usize >= self.nodes.len() {
                return Err(Error::Invalid(format!("recovery of unknown node {c}")));
            }
        }
        let workers = opts.replay_mode().workers();
        let mut report = RecoveryReport {
            recovered_nodes: crashed.clone(),
            ..RecoveryReport::default()
        };
        let mut timings = PhaseTimings::default();
        let mut mark = Instant::now();
        fn lap(mark: &mut Instant) -> u64 {
            let us = mark.elapsed().as_micros() as u64;
            *mark = Instant::now();
            us
        }

        // ---- Analysis: tail repair + ARIES analysis per crashed
        // node. The message phases of the distributed protocol
        // (InfoExchange … RecoveryLocks) have no threaded counterpart:
        // updates are owner-local, so no operational node holds state
        // the restarting owner needs; their timings stay zero. ----
        let mut losers: Vec<(NodeId, Vec<TxnId>)> = Vec::new();
        for &c in &crashed {
            let node = self.node_mut(c)?;
            report.torn_bytes_discarded += node.mark_restarting()?;
            let a = node.restart_analysis()?;
            report.log_bytes_scanned += a.bytes_scanned;
            losers.push((c, a.losers));
        }
        timings.record(RecoveryPhase::Analysis, lap(&mut mark));

        // ---- PSN lists: each crashed owner's NodePSNList over its
        // own dirty pages (the only log involved, see above). ----
        let mut involved: BTreeMap<PageId, Vec<NodeId>> = BTreeMap::new();
        let mut psn_lists: BTreeMap<NodeId, Vec<NodePsnEntry>> = BTreeMap::new();
        for &c in &crashed {
            let node = self.node_mut(c)?;
            let pages: Vec<PageId> = node.dpt().entries().iter().map(|e| e.pid).collect();
            for &pid in &pages {
                involved.entry(pid).or_default().push(c);
            }
            psn_lists.insert(c, node.build_psn_list(&pages)?);
        }
        timings.record(RecoveryPhase::PsnLists, lap(&mut mark));

        let plan = plan_replay(&involved, &psn_lists);
        report.replay_waves = plan.waves.len();
        report.critical_path_psns = plan.critical_path_psns;

        // ---- Replay: wave by wave. Log extraction is serial (it
        // needs the owner's log) but batched — one scan per crashed
        // node serves every unit; the PSN-filtered redo itself runs on
        // `workers` scoped threads against owned page images. ----
        let mut extracted: BTreeMap<PageId, Vec<(Psn, PageOp)>> = BTreeMap::new();
        let mut targets: BTreeMap<NodeId, BTreeMap<PageId, Lsn>> = BTreeMap::new();
        for unit in &plan.units {
            let start = unit.hops.iter().map(|h| h.2).min().unwrap_or(Lsn::ZERO);
            targets
                .entry(unit.pid.owner)
                .or_default()
                .insert(unit.pid, start);
        }
        for (owner, pages) in targets {
            extracted.append(&mut self.node_mut(owner)?.collect_replay_records_batch(&pages)?);
        }
        let mut wave_timings = Vec::with_capacity(plan.waves.len());
        for wave in &plan.waves {
            let mut work = Vec::with_capacity(wave.len());
            for &ui in wave {
                let unit = &plan.units[ui];
                let node = self.node_mut(unit.pid.owner)?;
                let (page, _) = node.authoritative_copy(unit.pid)?;
                let records = extracted.remove(&unit.pid).unwrap_or_default();
                work.push(ReplayWork {
                    pid: unit.pid,
                    page,
                    records,
                });
            }
            let wave_started = Instant::now();
            let mut lanes: Vec<Vec<ReplayWork>> = (0..workers).map(|_| Vec::new()).collect();
            for (i, w) in work.into_iter().enumerate() {
                lanes[i % workers].push(w);
            }
            let outcomes: Vec<Result<Vec<ReplayedUnit>>> = std::thread::scope(|s| {
                let handles: Vec<_> = lanes
                    .into_iter()
                    .enumerate()
                    .map(|(lane, items)| {
                        let locks = Arc::clone(&self.locks);
                        s.spawn(move || replay_lane(&locks, lane, items))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(r) => r,
                        Err(_) => Err(Error::Protocol("replay worker panicked".into())),
                    })
                    .collect()
            });
            let makespan_us = wave_started.elapsed().as_micros() as u64;
            let mut timing = WaveTiming {
                makespan_us,
                ..WaveTiming::default()
            };
            for outcome in outcomes {
                for done in outcome? {
                    check_psn_order(done.page.id(), &done.from_psns)?;
                    report.records_replayed += done.applied;
                    report.pages_recovered += 1;
                    timing.units += 1;
                    timing.serial_us += done.wall_us;
                    // Durable write re-anchors the page and clears its
                    // DPT entry, like the simulator's post-replay ship.
                    self.node_mut(done.page.id().owner)?
                        .write_owned_page(&done.page)?;
                }
            }
            wave_timings.push(timing);
        }
        timings.record(RecoveryPhase::Replay, lap(&mut mark));
        timings.set_replay_waves(wave_timings);

        // ---- Undo losers locally (CLRs), then checkpoint. ----
        for (c, txns) in losers {
            for txn in txns {
                let node = self.node_mut(c)?;
                node.start_abort(txn)?;
                loop {
                    match node.rollback_step(txn, Lsn::ZERO)? {
                        cblog_core::node::RollbackStep::Done => break,
                        cblog_core::node::RollbackStep::Undone(_) => {}
                        cblog_core::node::RollbackStep::NeedPage(pid) => {
                            ensure_cached(node, pid)?;
                        }
                    }
                }
                node.finish_abort(txn)?;
                report.losers_undone += 1;
            }
        }
        for &c in &crashed {
            let node = self.node_mut(c)?;
            node.force_log()?;
            node.checkpoint()?;
        }
        timings.record(RecoveryPhase::Undo, lap(&mut mark));
        timings.record(RecoveryPhase::Done, lap(&mut mark));

        for &c in &crashed {
            let reg = self.nodes[c.0 as usize].registry();
            reg.gauge(keys::RECOVERY_REPLAY_WAVES)
                .set(plan.waves.len() as i64);
            reg.gauge(keys::RECOVERY_CRITICAL_PATH_PSNS)
                .set(plan.critical_path_psns as i64);
            let widths = reg.histogram(keys::RECOVERY_WAVE_WIDTH);
            for w in &plan.waves {
                widths.record(w.len() as u64);
            }
        }
        report.timings = timings;
        Ok(report)
    }
}

// ----------------------------------------------------------------------
// Parallel replay workers
// ----------------------------------------------------------------------

/// Lock-table token namespace for replay workers: `node << 48` tokens
/// from live transactions never reach node 0xffff.
const REPLAY_TOKEN_BASE: u64 = 0xffff_0000_0000_0000;

/// One page's redo, pre-extracted so the worker needs no `&mut Node`.
struct ReplayWork {
    pid: PageId,
    page: Page,
    records: Vec<(Psn, PageOp)>,
}

/// What one worker did to one page.
struct ReplayedUnit {
    page: Page,
    applied: u64,
    wall_us: u64,
    /// PSNs of the applied records, in application order — the rt
    /// analog of the sim watchdog's ReplayHop stream.
    from_psns: Vec<Psn>,
}

/// Replays one lane's units in order, latching each page exclusively
/// for the duration of its redo.
fn replay_lane(
    locks: &ShardedLockTable,
    lane: usize,
    items: Vec<ReplayWork>,
) -> Result<Vec<ReplayedUnit>> {
    let token = REPLAY_TOKEN_BASE | lane as u64;
    let mut out = Vec::with_capacity(items.len());
    for mut w in items {
        let t = Instant::now();
        if !locks.acquire_spin(w.pid, token, LockMode::Exclusive, ACQUIRE_SPINS) {
            return Err(Error::Protocol(format!(
                "replay worker could not latch {}",
                w.pid
            )));
        }
        let applied = apply_unit(&mut w);
        locks.release(w.pid, token);
        let from_psns = applied?;
        out.push(ReplayedUnit {
            applied: from_psns.len() as u64,
            wall_us: t.elapsed().as_micros() as u64,
            page: w.page,
            from_psns,
        });
    }
    Ok(out)
}

/// PSN-filtered redo of one page (the filter of [`Node::replay_page`],
/// against pre-extracted records). Returns the applied PSNs in order.
fn apply_unit(w: &mut ReplayWork) -> Result<Vec<Psn>> {
    let mut from_psns = Vec::new();
    for (psn_before, op) in &w.records {
        if *psn_before == w.page.psn() {
            op.apply_redo(&mut w.page)?;
            w.page.set_psn(psn_before.next());
            from_psns.push(*psn_before);
        }
    }
    Ok(from_psns)
}

/// Post-join PSN-order invariant: applied PSNs of one page must be
/// strictly increasing — the same per-page monotonicity the sim span
/// watchdog enforces on ReplayHop spans.
fn check_psn_order(pid: PageId, from_psns: &[Psn]) -> Result<()> {
    for pair in from_psns.windows(2) {
        if pair[1] <= pair[0] {
            return Err(Error::Protocol(format!(
                "replay PSN order violation on {pid}: {} applied after {}",
                pair[1], pair[0]
            )));
        }
    }
    Ok(())
}

// ----------------------------------------------------------------------
// Worker
// ----------------------------------------------------------------------

/// Spins this many times on a contended lock (serving the inbox in
/// between) before aborting the transaction and retrying the plan.
const ACQUIRE_SPINS: usize = 20_000;
/// Retries of one plan after forced aborts before giving up.
const PLAN_RETRIES: usize = 100;
/// Patience for a remote page fetch (the owner may be mid-fsync).
const FETCH_TIMEOUT: Duration = Duration::from_secs(5);

struct WorkerOutcome {
    node: Node,
    report: RunReport,
    sent: u64,
    stats: RtNodeStats,
}

/// One MPL lane: its plans run sequentially; the worker interleaves
/// lanes so several commits can park in the force scheduler at once.
struct Lane {
    plans: Vec<TxnPlan>,
    next: usize,
    /// Parked commit: (txn, submit time, lock token).
    waiting: Option<(TxnId, SimTime, u64)>,
    retries: usize,
}

fn token_of(txn: TxnId) -> u64 {
    ((txn.node.0 as u64) << 48) | (txn.seq & 0xffff_ffff_ffff)
}

fn encode_pid(pid: PageId) -> Vec<u8> {
    pid.to_u64().to_le_bytes().to_vec()
}

fn decode_pid(payload: &[u8]) -> Result<PageId> {
    let bytes: [u8; 8] = payload
        .try_into()
        .map_err(|_| Error::Protocol("bad page-fetch payload".into()))?;
    Ok(PageId::from_u64(u64::from_le_bytes(bytes)))
}

#[allow(clippy::too_many_arguments)]
fn run_worker(
    mut node: Node,
    ep: ChannelEndpoint,
    locks: Arc<ShardedLockTable>,
    plans: Vec<TxnPlan>,
    policy: GroupCommitPolicy,
    clock: WallClock,
    remaining: Arc<AtomicUsize>,
    latency: Histogram,
) -> Result<WorkerOutcome> {
    let mut sched = ForceScheduler::new(policy);
    let mut report = RunReport::default();
    let started = Instant::now();
    let mut disk_us = 0u64;
    let mut net_us = 0u64;
    let mut cpu_us = 0u64;
    macro_rules! timed {
        ($bucket:ident, $e:expr) => {{
            let t = Instant::now();
            let r = $e;
            $bucket += t.elapsed().as_micros() as u64;
            r
        }};
    }

    // Bucket plans into lanes, preserving per-lane order.
    let mut lanes: Vec<Lane> = Vec::new();
    let mut lane_ids: Vec<usize> = Vec::new();
    for plan in plans {
        let idx = match lane_ids.iter().position(|&s| s == plan.stream) {
            Some(i) => i,
            None => {
                lane_ids.push(plan.stream);
                lanes.push(Lane {
                    plans: Vec::new(),
                    next: 0,
                    waiting: None,
                    retries: 0,
                });
                lanes.len() - 1
            }
        };
        lanes[idx].plans.push(plan);
    }

    let mut finished = lanes.is_empty();
    if finished {
        remaining.fetch_sub(1, Ordering::AcqRel);
    }
    loop {
        timed!(net_us, serve_inbox(&mut node, &ep)?);
        if sched.is_due(clock.now_us()) {
            timed!(
                disk_us,
                flush(
                    &mut node,
                    &mut sched,
                    &mut lanes,
                    &locks,
                    &clock,
                    &latency,
                    &mut report
                )?
            );
        }

        let mut progressed = false;
        let mut live = false;
        for li in 0..lanes.len() {
            if lanes[li].waiting.is_some() {
                live = true;
                continue;
            }
            if lanes[li].next >= lanes[li].plans.len() {
                continue;
            }
            live = true;
            let plan = lanes[li].plans[lanes[li].next].clone();
            let outcome = timed!(
                cpu_us,
                run_txn(
                    &mut node,
                    &ep,
                    &locks,
                    &clock,
                    &plan,
                    &mut sched,
                    &mut report
                )?
            );
            match outcome {
                TxnOutcome::Committing(txn, at) => {
                    lanes[li].waiting = Some((txn, at, token_of(txn)));
                    lanes[li].retries = 0;
                }
                TxnOutcome::Done => {
                    lanes[li].next += 1;
                    lanes[li].retries = 0;
                }
                TxnOutcome::Retry => {
                    lanes[li].retries += 1;
                    if lanes[li].retries > PLAN_RETRIES {
                        return Err(Error::Protocol(format!(
                            "{} lane {} livelocked on plan {}",
                            node.id(),
                            lane_ids[li],
                            lanes[li].next
                        )));
                    }
                }
            }
            progressed = true;
        }

        if !live {
            // All lanes done. Force out any stragglers, then keep
            // serving page fetches until every node is done too.
            while sched.pending_len() > 0 {
                timed!(
                    disk_us,
                    flush(
                        &mut node,
                        &mut sched,
                        &mut lanes,
                        &locks,
                        &clock,
                        &latency,
                        &mut report
                    )?
                );
            }
            if !finished {
                finished = true;
                remaining.fetch_sub(1, Ordering::AcqRel);
            }
            if remaining.load(Ordering::Acquire) == 0 {
                break;
            }
            if let Some(env) = ep.recv_timeout(Duration::from_micros(500)) {
                timed!(net_us, serve(&mut node, &ep, env)?);
            }
            continue;
        }

        if !progressed {
            // Every live lane is parked on a group-commit window.
            let now = clock.now_us();
            if sched.is_due(now) {
                timed!(
                    disk_us,
                    flush(
                        &mut node,
                        &mut sched,
                        &mut lanes,
                        &locks,
                        &clock,
                        &latency,
                        &mut report
                    )?
                );
            } else if let Some(d) = sched.deadline() {
                let wait = d.saturating_sub(now).clamp(1, 5_000);
                if let Some(env) = ep.recv_timeout(Duration::from_micros(wait)) {
                    timed!(net_us, serve(&mut node, &ep, env)?);
                }
            }
        }
    }

    ep.drain();
    Ok(WorkerOutcome {
        stats: RtNodeStats {
            node: node.id().0,
            wall_us: started.elapsed().as_micros() as u64,
            disk_us,
            net_us,
            cpu_us,
        },
        node,
        report,
        sent: ep.sent(),
    })
}

enum TxnOutcome {
    /// Commit record appended; parked in the scheduler.
    Committing(TxnId, SimTime),
    /// Plan consumed (user abort completed).
    Done,
    /// Forced abort (lock conflict); plan not consumed.
    Retry,
}

fn run_txn(
    node: &mut Node,
    ep: &ChannelEndpoint,
    locks: &ShardedLockTable,
    clock: &WallClock,
    plan: &TxnPlan,
    sched: &mut ForceScheduler,
    report: &mut RunReport,
) -> Result<TxnOutcome> {
    let me = node.id();
    let txn = node.begin()?;
    let token = token_of(txn);
    for op in &plan.ops {
        let (pid, mode) = match *op {
            PlanOp::Read { pid, .. } => (pid, LockMode::Shared),
            PlanOp::Write { pid, .. } => (pid, LockMode::Exclusive),
        };
        if mode == LockMode::Exclusive && pid.owner != me {
            abort_txn(node, ep, locks, txn, token)?;
            return Err(Error::Protocol(format!(
                "{me} plan writes remote page {pid}: the threaded runtime only writes owned pages"
            )));
        }
        if !acquire(node, ep, locks, pid, token, mode)? {
            abort_txn(node, ep, locks, txn, token)?;
            report.forced_aborts += 1;
            return Ok(TxnOutcome::Retry);
        }
        match *op {
            PlanOp::Read { pid, slot } => {
                if pid.owner == me {
                    ensure_cached(node, pid)?;
                    node.peek_slot(pid, slot).ok_or(Error::NoSuchPage(pid))?;
                } else {
                    remote_read(node, ep, pid, slot)?;
                }
            }
            PlanOp::Write { pid, slot, value } => {
                ensure_cached(node, pid)?;
                let before = node.peek_slot(pid, slot).ok_or(Error::NoSuchPage(pid))?;
                node.log_update(
                    txn,
                    pid,
                    PageOp::WriteRange {
                        off: (slot * 8) as u32,
                        before: before.to_le_bytes().to_vec(),
                        after: value.to_le_bytes().to_vec(),
                    },
                )?;
            }
        }
        report.ops_executed += 1;
    }
    if plan.abort {
        abort_txn(node, ep, locks, txn, token)?;
        report.user_aborts += 1;
        return Ok(TxnOutcome::Done);
    }
    let lsn = node.commit_begin(txn)?;
    // Strict 2PL releases transaction locks at commit_begin; the same
    // early release is safe here because cross-thread visibility of
    // this transaction's updates requires a page ship, and the serving
    // path forces the whole log first (WAL rule).
    locks.release_all(token);
    let now = clock.now_us();
    sched.submit(txn, lsn, now);
    Ok(TxnOutcome::Committing(txn, now))
}

/// Forces the log and acknowledges every commit the force covered.
fn flush(
    node: &mut Node,
    sched: &mut ForceScheduler,
    lanes: &mut [Lane],
    locks: &ShardedLockTable,
    clock: &WallClock,
    latency: &Histogram,
    report: &mut RunReport,
) -> Result<()> {
    node.force_log()?;
    let flushed = node.log().flushed_lsn();
    for txn in sched.drain_acked(flushed) {
        node.finish_commit(txn)?;
        report.committed += 1;
        let now = clock.now_us();
        for lane in lanes.iter_mut() {
            if let Some((w, at, token)) = lane.waiting {
                if w == txn {
                    latency.record(now.saturating_sub(at));
                    // Locks were released at commit_begin; the token is
                    // kept only for debugging, clear defensively.
                    locks.release_all(token);
                    lane.waiting = None;
                    lane.next += 1;
                    break;
                }
            }
        }
    }
    Ok(())
}

/// Takes `pid` for `token`, serving incoming page fetches while it
/// spins so two nodes waiting on each other's service cannot deadlock.
fn acquire(
    node: &mut Node,
    ep: &ChannelEndpoint,
    locks: &ShardedLockTable,
    pid: PageId,
    token: u64,
    mode: LockMode,
) -> Result<bool> {
    for i in 0..ACQUIRE_SPINS {
        if locks.try_acquire(pid, token, mode) {
            return Ok(true);
        }
        serve_inbox(node, ep)?;
        if i % 64 == 63 {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
    Ok(false)
}

fn abort_txn(
    node: &mut Node,
    _ep: &ChannelEndpoint,
    locks: &ShardedLockTable,
    txn: TxnId,
    token: u64,
) -> Result<()> {
    node.start_abort(txn)?;
    loop {
        match node.rollback_step(txn, Lsn::ZERO)? {
            cblog_core::node::RollbackStep::Done => break,
            cblog_core::node::RollbackStep::Undone(_) => {}
            cblog_core::node::RollbackStep::NeedPage(pid) => {
                ensure_cached(node, pid)?;
            }
        }
    }
    node.finish_abort(txn)?;
    locks.release_all(token);
    Ok(())
}

/// Brings an owned page into the buffer (from disk if necessary). The
/// buffer is sized above the working set, so eviction of a dirty page
/// is an overflow error rather than a silent correctness hazard.
fn ensure_cached(node: &mut Node, pid: PageId) -> Result<()> {
    if node.buffer().contains(pid) {
        return Ok(());
    }
    let (page, _) = node.authoritative_copy(pid)?;
    if let Some(ev) = node.cache_page(page, false)? {
        if ev.dirty {
            return Err(Error::Protocol(format!(
                "{} buffer overflow evicted dirty page {}: raise buffer_frames",
                node.id(),
                ev.page.id()
            )));
        }
    }
    Ok(())
}

/// Fetches a remote page image from its owner and reads one slot. The
/// image is used once and dropped — without callback locking there is
/// no safe way to keep it cached past the transaction's S lock.
fn remote_read(node: &mut Node, ep: &ChannelEndpoint, pid: PageId, slot: usize) -> Result<u64> {
    ep.send(pid.owner, MsgKind::LockRequest, encode_pid(pid))?;
    let deadline = Instant::now() + FETCH_TIMEOUT;
    loop {
        match ep.recv_timeout(Duration::from_millis(1)) {
            Some(env) if env.kind == MsgKind::PageShip => {
                let page = Page::from_bytes(env.payload)?;
                if page.id() == pid {
                    return page.read_slot(slot);
                }
                // A ship we did not ask for; workers have one fetch in
                // flight at a time, so this cannot happen — drop it.
            }
            Some(env) => serve(node, ep, env)?,
            None => {
                if Instant::now() >= deadline {
                    return Err(Error::Protocol(format!("page fetch of {pid} timed out")));
                }
            }
        }
    }
}

fn serve_inbox(node: &mut Node, ep: &ChannelEndpoint) -> Result<()> {
    while let Some(env) = ep.try_recv() {
        serve(node, ep, env)?;
    }
    Ok(())
}

/// Owner-side service: ship the authoritative image of an owned page.
/// If the buffer copy is dirty, the WAL rule applies — our log records
/// may cover its updates, so force the log before the image escapes
/// the node.
fn serve(node: &mut Node, ep: &ChannelEndpoint, env: Envelope) -> Result<()> {
    match env.kind {
        MsgKind::LockRequest => {
            let pid = decode_pid(&env.payload)?;
            if node.buffer().is_dirty(pid) == Some(true) {
                node.force_log()?;
            }
            let (page, _) = node.authoritative_copy(pid)?;
            ep.send(env.from, MsgKind::PageShip, page.to_bytes())?;
        }
        other => {
            return Err(Error::Protocol(format!(
                "threaded runtime got unexpected {other:?} message"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(owner: u32, index: u32) -> PageId {
        PageId::new(NodeId(owner), index)
    }

    fn wplan(client: u32, stream: usize, writes: &[(PageId, usize, u64)]) -> TxnPlan {
        TxnPlan {
            client: NodeId(client),
            stream,
            ops: writes
                .iter()
                .map(|&(pid, slot, value)| PlanOp::Write { pid, slot, value })
                .collect(),
            abort: false,
        }
    }

    #[test]
    fn two_threaded_nodes_commit_locally() {
        let mut tc = ThreadCluster::new(ThreadClusterConfig::default()).unwrap();
        let plans = vec![
            wplan(0, 0, &[(pid(0, 0), 0, 11)]),
            wplan(1, 0, &[(pid(1, 0), 0, 22)]),
        ];
        let report = tc.run(&plans).unwrap();
        assert_eq!(report.committed, 2);
        assert_eq!(report.forced_aborts, 0);
        let stats = tc.last_stats().unwrap();
        assert_eq!(stats.commit_msgs, 0, "commit path sends no messages");
        assert_eq!(stats.msgs, 0, "purely local plans need no traffic at all");
        assert!(stats.forces >= 2, "each commit forced its local log");

        let img = tc.page_image(pid(0, 0)).unwrap();
        let page = Page::from_bytes(img).unwrap();
        assert_eq!(page.read_slot(0).unwrap(), 11);
    }

    #[test]
    fn remote_read_crosses_the_mesh() {
        let mut tc = ThreadCluster::new(ThreadClusterConfig::default()).unwrap();
        // Node 0 commits a value; then node 1 reads it remotely.
        let report = tc.run(&[wplan(0, 0, &[(pid(0, 3), 2, 77)])]).unwrap();
        assert_eq!(report.committed, 1);
        let plans = vec![TxnPlan {
            client: NodeId(1),
            stream: 0,
            ops: vec![PlanOp::Read {
                pid: pid(0, 3),
                slot: 2,
            }],
            abort: false,
        }];
        let report = tc.run(&plans).unwrap();
        assert_eq!(report.committed, 1);
        let stats = tc.last_stats().unwrap();
        assert_eq!(stats.msgs, 2, "one fetch request, one page ship");
        assert_eq!(stats.commit_msgs, 0);
    }

    #[test]
    fn user_abort_rolls_back_on_a_real_thread() {
        let mut tc = ThreadCluster::new(ThreadClusterConfig::default()).unwrap();
        let setup = tc.run(&[wplan(0, 0, &[(pid(0, 1), 0, 5)])]).unwrap();
        assert_eq!(setup.committed, 1);
        let plans = vec![TxnPlan {
            client: NodeId(0),
            stream: 0,
            ops: vec![PlanOp::Write {
                pid: pid(0, 1),
                slot: 0,
                value: 99,
            }],
            abort: true,
        }];
        let report = tc.run(&plans).unwrap();
        assert_eq!(report.committed, 0);
        assert_eq!(report.user_aborts, 1);
        let page = Page::from_bytes(tc.page_image(pid(0, 1)).unwrap()).unwrap();
        assert_eq!(page.read_slot(0).unwrap(), 5, "abort undone");
    }

    #[test]
    fn file_backed_wals_sync_for_real() {
        let dir = std::env::temp_dir().join(format!(
            "cblog-rt-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut tc = ThreadCluster::new(ThreadClusterConfig {
            owned_pages: vec![4, 4],
            wal: WalBacking::Dir(dir.clone()),
            ..ThreadClusterConfig::default()
        })
        .unwrap();
        let report = tc
            .run(&[
                wplan(0, 0, &[(pid(0, 0), 0, 1)]),
                wplan(1, 0, &[(pid(1, 0), 0, 2)]),
            ])
            .unwrap();
        assert_eq!(report.committed, 2);
        assert!(dir.join("node0.wal").exists());
        assert!(dir.join("node1.wal").exists());
        assert!(
            std::fs::metadata(dir.join("node0.wal")).unwrap().len() > 0,
            "commit records reached the file"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn window_policy_batches_forces_across_lanes() {
        let mut tc = ThreadCluster::new(ThreadClusterConfig {
            owned_pages: vec![16],
            group_commit: GroupCommitPolicy::Window {
                window_us: 2_000,
                max_batch: 4,
            },
            ..ThreadClusterConfig::default()
        })
        .unwrap();
        // 4 lanes × 4 txns, each lane on its own page: commits park
        // together, so forces come out well below one per commit.
        let mut plans = Vec::new();
        for lane in 0..4usize {
            for t in 0..4u64 {
                plans.push(wplan(0, lane, &[(pid(0, lane as u32), 0, t + 1)]));
            }
        }
        let report = tc.run(&plans).unwrap();
        assert_eq!(report.committed, 16);
        let stats = tc.last_stats().unwrap();
        assert!(
            stats.forces <= 8,
            "expected batched forces, got {} for 16 commits",
            stats.forces
        );
        let snap = tc.latency().snapshot();
        assert_eq!(snap.count, 16, "every commit's latency was recorded");
    }
}
