//! Sim-vs-threads oracle equivalence.
//!
//! The deterministic simulator is the correctness oracle: both engines
//! execute the *same* seeded plan list through the same `Node`
//! protocol machinery, and because every stream writes only its own
//! private pages, each page's update sequence is stream-local — the
//! final page images are independent of how the threaded engine
//! interleaves streams. Byte-identical images (PSNs included) and
//! equal commit tallies are therefore hard requirements, not
//! statistical expectations.

use cblog_common::{NodeId, PageId};
use cblog_core::{
    recover, Cluster, ClusterConfig, GroupCommitPolicy, PlanOp, RecoveryOptions, RecoveryReport,
    ReplayMode, RunReport, Runtime, TxnPlan,
};
use cblog_rt::{ThreadCluster, ThreadClusterConfig, WalBacking};
use cblog_sim::workload::{self, Op, TxnSpec, WorkloadConfig};

fn to_plans(specs: &[TxnSpec], stream: usize) -> Vec<TxnPlan> {
    specs
        .iter()
        .map(|s| TxnPlan {
            client: s.client,
            stream,
            ops: s
                .ops
                .iter()
                .map(|op| match *op {
                    Op::Read { pid, slot } => PlanOp::Read { pid, slot },
                    Op::Write { pid, slot, value } => PlanOp::Write { pid, slot, value },
                })
                .collect(),
            abort: s.user_abort,
        })
        .collect()
}

/// Runs `plans` on both engines and asserts equal reports and
/// byte-identical final images of every page.
fn cross_check(
    owned: &[u32],
    policy: GroupCommitPolicy,
    plans: &[TxnPlan],
) -> (RunReport, RunReport) {
    let mut sim = Cluster::new(
        ClusterConfig::builder()
            .owned_pages(owned.to_vec())
            .group_commit(policy)
            .build(),
    )
    .unwrap();
    let sim_report = Runtime::run(&mut sim, plans).unwrap();

    let dir = std::env::temp_dir().join(format!(
        "cblog-equiv-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut rt = ThreadCluster::new(ThreadClusterConfig {
        owned_pages: owned.to_vec(),
        group_commit: policy,
        wal: WalBacking::Dir(dir.clone()),
        ..ThreadClusterConfig::default()
    })
    .unwrap();
    let rt_report = Runtime::run(&mut rt, plans).unwrap();

    assert_eq!(sim_report.committed, rt_report.committed, "commit tallies");
    assert_eq!(
        sim_report.user_aborts, rt_report.user_aborts,
        "user-abort tallies"
    );
    assert_eq!(sim_report.forced_aborts, 0, "sim saw conflicts");
    assert_eq!(rt_report.forced_aborts, 0, "threads saw conflicts");
    assert_eq!(
        sim_report.ops_executed, rt_report.ops_executed,
        "op tallies"
    );

    for (o, &count) in owned.iter().enumerate() {
        for i in 0..count {
            let pid = PageId::new(NodeId(o as u32), i);
            let a = Runtime::page_image(&mut sim, pid).unwrap();
            let b = Runtime::page_image(&mut rt, pid).unwrap();
            assert_eq!(a, b, "final image of {pid} diverged");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    (sim_report, rt_report)
}

fn nodes(n: u32) -> Vec<NodeId> {
    (0..n).map(NodeId).collect()
}

#[test]
fn workload_a_write_heavy_no_aborts() {
    let owned = [8u32, 8, 8, 8];
    let cfg = WorkloadConfig {
        seed: 42,
        txns_per_client: 30,
        ops_per_txn: 6,
        write_ratio: 0.8,
        abort_prob: 0.0,
        ..WorkloadConfig::default()
    };
    let all: Vec<PageId> = (0..4)
        .flat_map(|o| workload::owned_pages(NodeId(o), 8))
        .collect();
    let specs = workload::generate(
        &cfg,
        &nodes(4),
        &all,
        Some(&|c: NodeId| workload::owned_pages(c, 8)),
    );
    let plans = to_plans(&specs, 0);
    let (_, rt_report) = cross_check(&owned, GroupCommitPolicy::Immediate, &plans);
    assert!(rt_report.committed > 0);
}

#[test]
fn workload_b_user_aborts_under_window_policy() {
    let owned = [6u32, 6, 6];
    let cfg = WorkloadConfig {
        seed: 7,
        txns_per_client: 25,
        ops_per_txn: 5,
        write_ratio: 0.6,
        abort_prob: 0.3,
        ..WorkloadConfig::default()
    };
    let all: Vec<PageId> = (0..3)
        .flat_map(|o| workload::owned_pages(NodeId(o), 6))
        .collect();
    let specs = workload::generate(
        &cfg,
        &nodes(3),
        &all,
        Some(&|c: NodeId| workload::owned_pages(c, 6)),
    );
    let plans = to_plans(&specs, 0);
    let policy = GroupCommitPolicy::Window {
        window_us: 300,
        max_batch: 8,
    };
    let (_, rt_report) = cross_check(&owned, policy, &plans);
    assert!(rt_report.user_aborts > 0, "seed must exercise rollback");
}

#[test]
fn workload_c_two_streams_per_node() {
    // Each (node, stream) pair gets a disjoint half of the node's
    // pages, so streams interleave freely on one worker without ever
    // colliding — exactly the situation MPL creates in the benchmark.
    let owned = [8u32, 8];
    let mk = |seed: u64, lo: u32| {
        let cfg = WorkloadConfig {
            seed,
            txns_per_client: 20,
            ops_per_txn: 4,
            write_ratio: 0.7,
            abort_prob: 0.1,
            ..WorkloadConfig::default()
        };
        let all: Vec<PageId> = (0..2)
            .flat_map(|o| workload::owned_pages(NodeId(o), 8))
            .collect();
        workload::generate(
            &cfg,
            &nodes(2),
            &all,
            Some(&move |c: NodeId| (lo..lo + 4).map(|i| PageId::new(c, i)).collect()),
        )
    };
    let mut plans = to_plans(&mk(99, 0), 0);
    plans.extend(to_plans(&mk(100, 4), 1));
    let policy = GroupCommitPolicy::Adaptive {
        min_window_us: 50,
        max_window_us: 2_000,
        target_batch: 2,
    };
    let (_, rt_report) = cross_check(&owned, policy, &plans);
    assert_eq!(rt_report.committed + rt_report.user_aborts, 80);
}

#[test]
fn workload_d_remote_reads_of_quiescent_pages() {
    // Writes stay stream-private; reads target the *other* node's high
    // pages, which nobody writes. The read path crosses the channel
    // mesh (threads) / the accounted network (sim); the final state is
    // still fully determined by each node's own write stream.
    let owned = [8u32, 8];
    let mut plans = Vec::new();
    for node in 0..2u32 {
        let peer = 1 - node;
        for t in 0..12u64 {
            plans.push(TxnPlan {
                client: NodeId(node),
                stream: 0,
                ops: vec![
                    PlanOp::Write {
                        pid: PageId::new(NodeId(node), (t % 4) as u32),
                        slot: (t % 8) as usize,
                        value: 1000 * node as u64 + t,
                    },
                    PlanOp::Read {
                        pid: PageId::new(NodeId(peer), 6),
                        slot: 0,
                    },
                    PlanOp::Read {
                        pid: PageId::new(NodeId(peer), 7),
                        slot: 1,
                    },
                ],
                abort: t % 6 == 5,
            });
        }
    }
    let (_, rt_report) = cross_check(&owned, GroupCommitPolicy::Immediate, &plans);
    assert_eq!(rt_report.committed, 20);
    assert_eq!(rt_report.user_aborts, 4);
}

// ---- recovery equivalence -------------------------------------------------

const REC_NODES: u32 = 2;
const REC_PAGES: u32 = 6;

/// Owner-local write plans with deep per-page redo chains: every node
/// writes each of its pages six times, so the wave scheduler has real
/// PSN intervals to order and the PSN filter real work to skip.
fn recovery_plans() -> Vec<TxnPlan> {
    let mut plans = Vec::new();
    for node in 0..REC_NODES {
        for round in 0..6u64 {
            for page in 0..REC_PAGES {
                plans.push(TxnPlan {
                    client: NodeId(node),
                    stream: 0,
                    ops: vec![PlanOp::Write {
                        pid: PageId::new(NodeId(node), page),
                        slot: (round % 8) as usize,
                        value: 10_000 * node as u64 + 100 * round + page as u64,
                    }],
                    abort: false,
                });
            }
        }
    }
    plans
}

fn all_rec_pages() -> Vec<PageId> {
    (0..REC_NODES)
        .flat_map(|o| (0..REC_PAGES).map(move |i| PageId::new(NodeId(o), i)))
        .collect()
}

/// Runs the recovery workload on one engine, crashes every node, and
/// recovers under `mode`; returns the report plus the final image of
/// every page.
fn sim_recovered(mode: ReplayMode) -> (RecoveryReport, Vec<Vec<u8>>) {
    let mut sim = Cluster::new(
        ClusterConfig::builder()
            .owned_pages(vec![REC_PAGES; REC_NODES as usize])
            .build(),
    )
    .unwrap();
    Runtime::run(&mut sim, &recovery_plans()).unwrap();
    for n in 0..REC_NODES {
        sim.crash(NodeId(n));
    }
    let opts = RecoveryOptions::nodes(&[NodeId(0), NodeId(1)]).replay(mode);
    let report = recover(&mut sim, &opts).unwrap();
    let images = all_rec_pages()
        .iter()
        .map(|&pid| Runtime::page_image(&mut sim, pid).unwrap())
        .collect();
    (report, images)
}

fn rt_recovered(mode: ReplayMode, tag: &str) -> (RecoveryReport, Vec<Vec<u8>>) {
    let dir = std::env::temp_dir().join(format!("cblog-equiv-rec-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut rt = ThreadCluster::new(ThreadClusterConfig {
        owned_pages: vec![REC_PAGES; REC_NODES as usize],
        wal: WalBacking::Dir(dir.clone()),
        ..ThreadClusterConfig::default()
    })
    .unwrap();
    Runtime::run(&mut rt, &recovery_plans()).unwrap();
    for n in 0..REC_NODES {
        rt.crash(NodeId(n)).unwrap();
    }
    let opts = RecoveryOptions::nodes(&[NodeId(0), NodeId(1)]).replay(mode);
    let report = recover(&mut rt, &opts).unwrap();
    let images = all_rec_pages()
        .iter()
        .map(|&pid| Runtime::page_image(&mut rt, pid).unwrap())
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    (report, images)
}

#[test]
fn recovery_images_match_across_engines_and_replay_modes() {
    // Serial on the simulator is the oracle; every other (engine,
    // mode) combination must land on byte-identical page images.
    let (serial_report, oracle) = sim_recovered(ReplayMode::Serial);
    let total = (REC_NODES * REC_PAGES) as usize;
    assert_eq!(
        serial_report.pages_recovered + serial_report.pages_skipped_cached,
        total
    );
    assert!(serial_report.records_replayed > 0, "redo must have work");

    for workers in [2usize, 4, 8] {
        let (report, images) = sim_recovered(ReplayMode::Parallel { workers });
        assert_eq!(images, oracle, "sim parallel({workers}) image diverged");
        assert_eq!(report.replay_waves, serial_report.replay_waves);
        assert_eq!(report.records_replayed, serial_report.records_replayed);
    }

    let (rt_serial, rt_oracle) = rt_recovered(ReplayMode::Serial, "serial");
    assert_eq!(rt_oracle, oracle, "threads serial image diverged from sim");
    assert_eq!(
        rt_serial.pages_recovered + rt_serial.pages_skipped_cached,
        total
    );
    for workers in [2usize, 4, 8] {
        let (report, images) =
            rt_recovered(ReplayMode::Parallel { workers }, &format!("par{workers}"));
        assert_eq!(images, oracle, "threads parallel({workers}) image diverged");
        assert_eq!(report.replay_waves, rt_serial.replay_waves);
        assert_eq!(report.records_replayed, rt_serial.records_replayed);
    }
}
