//! Threaded-runtime observability: merged per-thread traces through
//! the protocol watchdog, profiler partition, and tracing overhead
//! neutrality (DESIGN §14).

use cblog_common::{NodeId, PageId, Psn, SpanId, SpanKind};
use cblog_core::{GroupCommitPolicy, PlanOp, RecoveryOptions, ReplayMode, Runtime, TxnPlan};
use cblog_rt::{ThreadCluster, ThreadClusterConfig, WalBacking};

fn pid(owner: u32, index: u32) -> PageId {
    PageId::new(NodeId(owner), index)
}

fn wplan(client: u32, stream: usize, writes: &[(PageId, usize, u64)]) -> TxnPlan {
    TxnPlan {
        client: NodeId(client),
        stream,
        ops: writes
            .iter()
            .map(|&(pid, slot, value)| PlanOp::Write { pid, slot, value })
            .collect(),
        abort: false,
    }
}

fn rplan(client: u32, stream: usize, reads: &[(PageId, usize)]) -> TxnPlan {
    TxnPlan {
        client: NodeId(client),
        stream,
        ops: reads
            .iter()
            .map(|&(pid, slot)| PlanOp::Read { pid, slot })
            .collect(),
        abort: false,
    }
}

/// A mixed workload: local writes on both nodes, then cross-node
/// reads, so the trace carries Txn/Update/GroupForce spans and the
/// full Msg → Transfer → Msg causal chain across the mesh.
fn mixed_plans() -> Vec<TxnPlan> {
    let mut plans = Vec::new();
    for round in 0..4u64 {
        plans.push(wplan(0, 0, &[(pid(0, 0), 0, 10 + round)]));
        plans.push(wplan(1, 0, &[(pid(1, 0), 0, 20 + round)]));
    }
    plans.push(rplan(1, 0, &[(pid(0, 0), 0)]));
    plans.push(rplan(0, 0, &[(pid(1, 0), 0)]));
    plans
}

#[test]
fn threaded_runs_produce_a_watchdog_clean_trace() {
    let mut tc = ThreadCluster::new(ThreadClusterConfig::default()).unwrap();
    let report = tc.run(&mixed_plans()).unwrap();
    assert_eq!(report.committed, 10);

    // run() already watchdog-checked at join; check again explicitly.
    tc.trace_check().unwrap();
    assert_eq!(tc.trace_dropped(), 0);
    let stats = tc.last_stats().unwrap();
    assert!(stats.spans > 0, "tracing on: the run recorded spans");
    assert_eq!(stats.spans as usize, tc.trace().len());

    let trace = tc.trace();
    let updates = trace
        .iter()
        .filter(|s| matches!(s.kind, SpanKind::Update { .. }))
        .count();
    assert_eq!(updates, 8, "one Update span per logged write");
    let forces = trace
        .iter()
        .filter(|s| matches!(s.kind, SpanKind::GroupForce { .. }))
        .count();
    assert!(forces >= 2, "acked commits emit GroupForce spans");
    assert!(
        trace.iter().any(|s| matches!(
            s.kind,
            SpanKind::Txn {
                committed: true,
                ..
            }
        )),
        "committed Txn spans present"
    );

    // The cross-mesh causal chain: each Transfer span's parent is the
    // requester's LockRequest Msg span, remapped into the merged id
    // space — present in the trace, from the *other* node.
    let transfers: Vec<_> = trace
        .iter()
        .filter(|s| matches!(s.kind, SpanKind::Transfer { .. }))
        .collect();
    assert_eq!(transfers.len(), 2, "two remote reads, two ships");
    for t in &transfers {
        assert!(!t.parent.is_none(), "transfer parented on the request");
        let parent = trace
            .iter()
            .find(|s| s.id == t.parent)
            .expect("parent span survived the merge");
        assert!(matches!(parent.kind, SpanKind::Msg { .. }));
        assert_ne!(parent.node, t.node, "request came from the other node");
    }

    // Every span id is unique and every non-NONE parent resolves.
    let mut ids = std::collections::BTreeSet::new();
    for s in trace {
        assert!(ids.insert(s.id), "duplicate merged id {}", s.id);
    }
    for s in trace {
        if !s.parent.is_none() {
            assert!(ids.contains(&s.parent), "dangling parent {}", s.parent);
        }
    }
}

#[test]
fn crash_and_parallel_recovery_are_watchdog_checked() {
    let dir = std::env::temp_dir().join(format!(
        "cblog-rt-trace-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut tc = ThreadCluster::new(ThreadClusterConfig {
        owned_pages: vec![8, 8],
        wal: WalBacking::Dir(dir.clone()),
        ..ThreadClusterConfig::default()
    })
    .unwrap();
    let mut plans = Vec::new();
    for round in 0..3u64 {
        for p in 0..4u32 {
            plans.push(wplan(
                0,
                p as usize,
                &[(pid(0, p), 0, round * 10 + p as u64)],
            ));
        }
    }
    let report = tc.run(&plans).unwrap();
    assert_eq!(report.committed, 12);

    tc.crash(NodeId(0)).unwrap();
    let rec = tc
        .recover(&RecoveryOptions::nodes(&[NodeId(0)]).replay(ReplayMode::Parallel { workers: 4 }))
        .unwrap();
    assert_eq!(rec.recovered_nodes, vec![NodeId(0)]);

    // recover() watchdog-checked the merged trace at join; the trace
    // carries the crash and the parallel replay's hops.
    tc.trace_check().unwrap();
    let trace = tc.trace();
    assert!(
        trace
            .iter()
            .any(|s| matches!(s.kind, SpanKind::Crash { node } if node == NodeId(0))),
        "crash recorded"
    );
    let root = trace
        .iter()
        .find(|s| matches!(s.kind, SpanKind::Recovery { .. }))
        .expect("recovery root span");
    let hops: Vec<_> = trace
        .iter()
        .filter(|s| matches!(s.kind, SpanKind::ReplayHop { .. }))
        .collect();
    assert!(!hops.is_empty(), "parallel replay recorded hops");
    for h in &hops {
        assert_eq!(h.parent, root.id, "hops parent on the recovery root");
    }
    assert!(
        trace
            .iter()
            .any(|s| matches!(s.kind, SpanKind::PageWrite { wal_ok: true, .. })),
        "post-replay durable writes recorded with the WAL rule intact"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_out_of_order_replay_hop_is_caught() {
    let mut tc = ThreadCluster::new(ThreadClusterConfig::default()).unwrap();
    let plans = vec![
        wplan(0, 0, &[(pid(0, 2), 0, 1)]),
        wplan(0, 0, &[(pid(0, 2), 0, 2)]),
    ];
    tc.run(&plans).unwrap();
    tc.crash(NodeId(0)).unwrap();
    tc.recover(&RecoveryOptions::nodes(&[NodeId(0)]).replay(ReplayMode::Parallel { workers: 2 }))
        .unwrap();
    tc.trace_check().unwrap();

    // Forge a hop that replays the page *behind* the frontier the real
    // recovery just advanced — exactly what a lost dependency edge in
    // parallel replay would produce. The watchdog must reject it.
    tc.inject_span(
        NodeId(0),
        SpanId::NONE,
        SpanKind::ReplayHop {
            pid: pid(0, 2),
            node: NodeId(0),
            from_psn: Psn(1),
            to_psn: Psn(2),
            applied: 1,
        },
    );
    let err = tc.trace_check().expect_err("watchdog flags the stale hop");
    let msg = err.to_string();
    assert!(
        msg.contains("replay"),
        "error names the replay violation: {msg}"
    );
}

#[test]
fn profiler_buckets_partition_busy_time_exactly() {
    let mut tc = ThreadCluster::new(ThreadClusterConfig {
        group_commit: GroupCommitPolicy::Window {
            window_us: 1_000,
            max_batch: 8,
        },
        ..ThreadClusterConfig::default()
    })
    .unwrap();
    tc.run(&mixed_plans()).unwrap();
    for s in tc.last_node_stats() {
        assert_eq!(
            s.disk_us + s.cpu_us + s.net_us + s.replay_us,
            s.busy_us,
            "node {}: bucket sum equals busy time exactly",
            s.node
        );
        assert!(
            s.busy_us + s.lock_wait_us <= s.wall_us,
            "node {}: busy {} + lock_wait {} within wall {}",
            s.node,
            s.busy_us,
            s.lock_wait_us,
            s.wall_us
        );
    }
    // The bucket split is mirrored onto each node's registry as the
    // same prof/* gauges the simulator exports.
    let snap = tc.metrics();
    for s in tc.last_node_stats() {
        let key = format!("n{}/prof/disk_us", s.node);
        match snap.get(&key) {
            Some(cblog_common::MetricValue::Gauge(v)) => {
                assert_eq!(*v as u64, s.disk_us, "{key} mirrors the worker split");
            }
            other => panic!("expected gauge at {key}, got {other:?}"),
        }
    }
}

#[test]
fn tracing_off_is_bit_identical_and_spanless() {
    let run_once = |tracing: bool| {
        let mut tc = ThreadCluster::new(ThreadClusterConfig {
            tracing,
            ..ThreadClusterConfig::default()
        })
        .unwrap();
        let report = tc.run(&mixed_plans()).unwrap();
        let spans = tc.last_stats().unwrap().spans;
        let mut images = Vec::new();
        for p in 0..2u32 {
            images.push(tc.page_image(pid(p, 0)).unwrap());
        }
        (report, spans, images, tc.trace().len())
    };
    let (on_report, on_spans, on_images, on_len) = run_once(true);
    let (off_report, off_spans, off_images, off_len) = run_once(false);
    assert_eq!(on_report, off_report, "tallies agree with tracing on/off");
    assert_eq!(on_images, off_images, "page images are bit-identical");
    assert!(on_spans > 0 && on_len > 0);
    assert_eq!(off_spans, 0, "tracing off records nothing");
    assert_eq!(off_len, 0);
}
