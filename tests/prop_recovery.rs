//! Randomized tests of the system's central invariant:
//!
//! > After any workload, any crash set, and recovery, the database
//! > shows exactly the committed state — durability for winners,
//! > atomicity for losers — without any log ever being merged.
//!
//! Workload shape, crash victims, eviction patterns and seeds are all
//! drawn from the workspace's deterministic `Rng` (the build has no
//! crates.io access, so no proptest); each case is reproducible from
//! its printed case number.

use cblog_common::{CostModel, NodeId, PageId, Rng};
use cblog_core::{recovery, Cluster, ClusterConfig, RecoveryOptions};
use cblog_sim::{run_workload, workload, WorkloadConfig};

const OWNER_PAGES: u32 = 6;

fn build(clients: usize, frames: usize) -> Cluster {
    let mut owned = vec![OWNER_PAGES];
    owned.extend(std::iter::repeat(0).take(clients));
    Cluster::new(
        ClusterConfig::builder()
            .owned_pages(owned)
            .page_size(1024)
            .buffer_frames(frames)
            .default_owned_pages(0)
            .cost(CostModel::unit())
            .build(),
    )
    .unwrap()
}

fn pages() -> Vec<PageId> {
    (0..OWNER_PAGES)
        .map(|i| PageId::new(NodeId(0), i))
        .collect()
}

/// Crash the owner at a random point (with a random subset of current
/// images living only in its buffer); recovery restores exactly the
/// committed state.
#[test]
fn owner_crash_preserves_committed_state() {
    for case in 0u64..24 {
        let mut rng = Rng::seed_from_u64(0xA100 + case);
        let clients = rng.gen_range_usize(1..4);
        let frames = rng.gen_range_usize(3..12);
        let write_ratio = 0.2 + 0.8 * rng.next_f64();
        let evict_mask = rng.gen_range(0..64) as u32;
        let mut c = build(clients, frames);
        let cfg = WorkloadConfig {
            txns_per_client: 12,
            ops_per_txn: 4,
            write_ratio,
            seed: rng.gen_range(0..1000),
            ..WorkloadConfig::default()
        };
        let ids: Vec<NodeId> = (1..=clients as u32).map(NodeId).collect();
        let specs = workload::generate(&cfg, &ids, &pages(), None);
        let stats = run_workload(&mut c, specs).unwrap();
        // Random eviction pattern: some pages move to the owner buffer,
        // some stay in client caches.
        for (i, p) in pages().iter().enumerate() {
            if evict_mask & (1 << i) != 0 {
                for cl in &ids {
                    let _ = c.evict_page(*cl, *p);
                }
            }
        }
        c.crash(NodeId(0));
        recovery::recover(&mut c, &RecoveryOptions::single(NodeId(0))).unwrap();
        stats
            .oracle
            .verify(&mut c, ids[0])
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
    }
}

/// Crash a random client; its committed remote updates survive and
/// its in-flight work disappears.
#[test]
fn client_crash_preserves_committed_state() {
    for case in 0u64..24 {
        let mut rng = Rng::seed_from_u64(0xA200 + case);
        let clients = rng.gen_range_usize(2..4);
        let victim_sel = rng.gen_range_usize(0..4);
        let write_ratio = 0.3 + 0.7 * rng.next_f64();
        let mut c = build(clients, 8);
        let cfg = WorkloadConfig {
            txns_per_client: 10,
            ops_per_txn: 4,
            write_ratio,
            seed: rng.gen_range(0..1000),
            ..WorkloadConfig::default()
        };
        let ids: Vec<NodeId> = (1..=clients as u32).map(NodeId).collect();
        let specs = workload::generate(&cfg, &ids, &pages(), None);
        let stats = run_workload(&mut c, specs).unwrap();
        let victim = ids[victim_sel % ids.len()];
        // Leave an uncommitted transaction on the victim with durable
        // records (the hardest loser case).
        let loser = c.begin(victim).unwrap();
        if c.write_u64(loser, pages()[0], 7, 123456).is_ok() {
            c.node_mut(victim).force_log().unwrap();
        }
        c.crash(victim);
        recovery::recover(&mut c, &RecoveryOptions::single(victim)).unwrap();
        let reader = *ids.iter().find(|n| **n != victim).unwrap();
        stats
            .oracle
            .verify(&mut c, reader)
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        // Loser update must be gone.
        let t = c.begin(reader).unwrap();
        let v = c.read_u64(t, pages()[0], 7).unwrap();
        c.commit(t).unwrap();
        assert_ne!(v, 123456, "case {case}");
    }
}

/// Crash owner AND a client simultaneously (§2.4): still exactly the
/// committed state.
#[test]
fn double_crash_preserves_committed_state() {
    for case in 0u64..24 {
        let mut rng = Rng::seed_from_u64(0xA300 + case);
        let evict_mask = rng.gen_range(0..64) as u32;
        let clients = 2usize;
        let mut c = build(clients, 8);
        let cfg = WorkloadConfig {
            txns_per_client: 10,
            ops_per_txn: 4,
            write_ratio: 0.8,
            seed: rng.gen_range(0..1000),
            ..WorkloadConfig::default()
        };
        let ids = [NodeId(1), NodeId(2)];
        let specs = workload::generate(&cfg, &ids, &pages(), None);
        let stats = run_workload(&mut c, specs).unwrap();
        for (i, p) in pages().iter().enumerate() {
            if evict_mask & (1 << i) != 0 {
                let _ = c.evict_page(NodeId(1), *p);
            }
        }
        c.crash(NodeId(0));
        c.crash(NodeId(1));
        recovery::recover(&mut c, &RecoveryOptions::nodes(&[NodeId(0), NodeId(1)])).unwrap();
        stats
            .oracle
            .verify(&mut c, NodeId(2))
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
    }
}

/// Recovery is stable under repetition: crash → recover → crash →
/// recover converges to the same state.
#[test]
fn recovery_is_idempotent_under_repeated_crashes() {
    for case in 0u64..16 {
        let mut rng = Rng::seed_from_u64(0xA400 + case);
        let rounds = rng.gen_range_usize(1..4);
        let mut c = build(2, 8);
        let cfg = WorkloadConfig {
            txns_per_client: 8,
            ops_per_txn: 3,
            write_ratio: 1.0,
            seed: rng.gen_range(0..500),
            ..WorkloadConfig::default()
        };
        let ids = [NodeId(1), NodeId(2)];
        let specs = workload::generate(&cfg, &ids, &pages(), None);
        let stats = run_workload(&mut c, specs).unwrap();
        for p in pages() {
            let _ = c.evict_page(NodeId(1), p);
            let _ = c.evict_page(NodeId(2), p);
        }
        for _ in 0..rounds {
            c.crash(NodeId(0));
            recovery::recover(&mut c, &RecoveryOptions::single(NodeId(0))).unwrap();
        }
        stats
            .oracle
            .verify(&mut c, NodeId(1))
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
    }
}
