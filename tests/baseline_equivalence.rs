//! Baseline equivalence: the same seeded workload produces the same
//! committed state on the client-based-logging cluster, the
//! force-on-transfer ablation, and the ARIES/CSA server-logging
//! baseline — while their cost profiles differ exactly the way the
//! paper argues.

use cblog_baselines::{
    force_on_transfer_cluster, PcaCluster, PcaConfig, ServerClientConfig, ServerCluster,
};
use cblog_common::{CostModel, NodeId, PageId};
use cblog_core::{Cluster, ClusterConfig, ClusterConfigBuilder, GroupCommitPolicy};
use cblog_net::MsgKind;
use cblog_sim::{run_workload, workload, System, WorkloadConfig};

const PAGES: u32 = 8;
const CLIENTS: usize = 2;

fn cbl_cfg() -> ClusterConfigBuilder {
    ClusterConfig::builder()
        .owned_pages(vec![PAGES, 0, 0])
        .page_size(1024)
        .buffer_frames(16)
        .default_owned_pages(0)
        .cost(CostModel::unit())
}

fn csa() -> ServerCluster {
    ServerCluster::new(ServerClientConfig {
        clients: CLIENTS,
        pages: PAGES,
        page_size: 1024,
        client_buffer_frames: 16,
        server_buffer_frames: 64,
        cost: CostModel::unit(),
        group_commit: GroupCommitPolicy::Immediate,
    })
    .unwrap()
}

fn wl(seed: u64) -> Vec<workload::TxnSpec> {
    let cfg = WorkloadConfig {
        txns_per_client: 40,
        ops_per_txn: 5,
        write_ratio: 0.6,
        hot_access: 0.3,
        abort_prob: 0.1,
        seed,
        ..WorkloadConfig::default()
    };
    let clients: Vec<NodeId> = (1..=CLIENTS as u32).map(NodeId).collect();
    let pages: Vec<PageId> = (0..PAGES).map(|i| PageId::new(NodeId(0), i)).collect();
    workload::generate(&cfg, &clients, &pages, None)
}

/// Runs the workload and returns the final committed values of every
/// tracked slot, read back through the system itself.
fn final_state<S: System>(sys: &mut S) -> Vec<((PageId, usize), u64)> {
    let stats = run_workload(sys, wl(99)).expect("run");
    stats.oracle.verify(sys, NodeId(1)).expect("verify");
    let mut out = Vec::new();
    for i in 0..PAGES {
        let pid = PageId::new(NodeId(0), i);
        for slot in 0..16usize {
            if let Some(v) = stats.oracle.expect(pid, slot) {
                out.push(((pid, slot), v));
            }
        }
    }
    out.sort();
    out
}

fn pca() -> PcaCluster {
    PcaCluster::new(PcaConfig {
        nodes: CLIENTS + 1,
        pages: PAGES,
        page_size: 1024,
        buffer_frames: 64, // generous: no-steal pins working sets
        cost: CostModel::unit(),
        group_commit: GroupCommitPolicy::Immediate,
    })
    .unwrap()
}

#[test]
fn all_four_systems_reach_identical_committed_state() {
    let mut cbl = Cluster::new(cbl_cfg().build()).unwrap();
    let mut fot = force_on_transfer_cluster(cbl_cfg()).unwrap();
    let mut srv = csa();
    let mut p = pca();
    let a = final_state(&mut cbl);
    let b = final_state(&mut fot);
    let c = final_state(&mut srv);
    let d = final_state(&mut p);
    assert!(!a.is_empty());
    assert_eq!(a, b, "force-on-transfer must not change semantics");
    assert_eq!(a, c, "server logging must not change semantics");
    assert_eq!(a, d, "PCA must not change semantics");
}

#[test]
fn cost_profiles_differ_as_the_paper_argues() {
    let mut cbl = Cluster::new(cbl_cfg().build()).unwrap();
    let mut srv = csa();
    let s_cbl = run_workload(&mut cbl, wl(7)).unwrap();
    let s_srv = run_workload(&mut srv, wl(7)).unwrap();
    // Same committed work.
    assert_eq!(s_cbl.committed, s_srv.committed);
    // CBL ships no log records; CSA ships one batch per commit.
    assert_eq!(s_cbl.net.count(MsgKind::LogShip), 0);
    assert!(s_srv.net.count(MsgKind::LogShip) >= s_srv.committed);
    // CSA pays the commit round trip.
    assert_eq!(s_cbl.net.count(MsgKind::CommitRequest), 0);
    assert_eq!(s_srv.net.count(MsgKind::CommitRequest), s_srv.committed);
    // CBL's disk forces are spread over the clients; CSA's land on the
    // server.
    let cbl_client_io = cbl.network().disk_ios_of(NodeId(1)) + cbl.network().disk_ios_of(NodeId(2));
    assert!(cbl_client_io > 0, "clients force their own logs");
    assert_eq!(
        srv.network().disk_ios_of(NodeId(1)) + srv.network().disk_ios_of(NodeId(2)),
        0,
        "CSA clients own no durable resource"
    );
}

#[test]
fn force_on_transfer_only_adds_disk_writes_never_changes_reads() {
    let mut cbl = Cluster::new(cbl_cfg().build()).unwrap();
    let mut fot = force_on_transfer_cluster(cbl_cfg()).unwrap();
    let s1 = run_workload(&mut cbl, wl(13)).unwrap();
    let s2 = run_workload(&mut fot, wl(13)).unwrap();
    assert_eq!(s1.committed, s2.committed);
    let io1 = cbl.network().disk_ios_of(NodeId(0));
    let io2 = fot.network().disk_ios_of(NodeId(0));
    assert!(
        io2 >= io1,
        "forcing can only add owner disk traffic: {io1} vs {io2}"
    );
}
