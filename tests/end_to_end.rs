//! Cross-crate end-to-end tests: full workloads through the cluster
//! with oracle verification, across cache sizes, topologies, record
//! pages and savepoints.

use cblog_common::{CostModel, NodeId, PageId};
use cblog_core::{Cluster, ClusterConfig};
use cblog_sim::{run_workload, workload, WorkloadConfig};

fn cluster(owned: Vec<u32>, frames: usize) -> Cluster {
    Cluster::new(
        ClusterConfig::builder()
            .owned_pages(owned)
            .page_size(1024)
            .buffer_frames(frames)
            .default_owned_pages(0)
            .cost(CostModel::unit())
            .build(),
    )
    .unwrap()
}

fn pages(owner: u32, n: u32) -> Vec<PageId> {
    (0..n).map(|i| PageId::new(NodeId(owner), i)).collect()
}

#[test]
fn mixed_workload_two_clients_verifies() {
    let mut c = cluster(vec![8, 0, 0], 32);
    let cfg = WorkloadConfig {
        txns_per_client: 40,
        ops_per_txn: 6,
        write_ratio: 0.5,
        hot_access: 0.3,
        seed: 1,
        ..WorkloadConfig::default()
    };
    let specs = workload::generate(&cfg, &[NodeId(1), NodeId(2)], &pages(0, 8), None);
    let stats = run_workload(&mut c, specs).unwrap();
    assert_eq!(stats.committed, 80);
    let n = stats.oracle.verify(&mut c, NodeId(1)).unwrap();
    assert!(n > 0);
}

#[test]
fn tiny_caches_force_constant_eviction_and_still_verify() {
    // 2 frames per node: pages constantly replace to the owner, the
    // WAL rule and flush-ack plumbing run hot.
    let mut c = cluster(vec![12, 0, 0], 2);
    let cfg = WorkloadConfig {
        txns_per_client: 30,
        ops_per_txn: 4,
        write_ratio: 0.8,
        seed: 2,
        ..WorkloadConfig::default()
    };
    let specs = workload::generate(&cfg, &[NodeId(1), NodeId(2)], &pages(0, 12), None);
    let stats = run_workload(&mut c, specs).unwrap();
    assert_eq!(stats.committed + stats.user_aborts, 60);
    stats.oracle.verify(&mut c, NodeId(2)).unwrap();
    // Evictions really happened.
    assert!(
        c.network().stats().count(cblog_net::MsgKind::ReplacePage) > 0,
        "tiny cache must ship replaced pages"
    );
}

#[test]
fn two_owner_topology_with_everyone_working() {
    let mut c = cluster(vec![6, 0, 6, 0], 24);
    let mut all = pages(0, 6);
    all.extend(pages(2, 6));
    let cfg = WorkloadConfig {
        txns_per_client: 25,
        ops_per_txn: 5,
        write_ratio: 0.5,
        seed: 3,
        ..WorkloadConfig::default()
    };
    let clients: Vec<NodeId> = (0..4).map(NodeId).collect();
    let specs = workload::generate(&cfg, &clients, &all, None);
    let stats = run_workload(&mut c, specs).unwrap();
    assert_eq!(stats.committed, 100);
    stats.oracle.verify(&mut c, NodeId(3)).unwrap();
}

#[test]
fn slotted_records_full_crud_cycle_across_nodes() {
    let mut c = cluster(vec![4, 0, 0], 16);
    let p = PageId::new(NodeId(0), 0);
    c.format_slotted(p).unwrap();
    // Node 1 inserts, node 2 updates, node 1 deletes.
    let t = c.begin(NodeId(1)).unwrap();
    let rids: Vec<_> = (0..10)
        .map(|i| {
            c.insert_record(t, p, format!("rec-{i}").as_bytes())
                .unwrap()
        })
        .collect();
    c.commit(t).unwrap();

    let t = c.begin(NodeId(2)).unwrap();
    for (i, rid) in rids.iter().enumerate() {
        c.update_record(t, *rid, format!("upd-{i}").as_bytes())
            .unwrap();
    }
    c.commit(t).unwrap();

    let t = c.begin(NodeId(1)).unwrap();
    for rid in rids.iter().take(5) {
        c.delete_record(t, *rid).unwrap();
    }
    c.commit(t).unwrap();

    let t = c.begin(NodeId(2)).unwrap();
    for (i, rid) in rids.iter().enumerate() {
        let r = c.read_record(t, *rid);
        if i < 5 {
            assert!(r.is_err(), "deleted record {i} must be gone");
        } else {
            assert_eq!(r.unwrap(), format!("upd-{i}").as_bytes());
        }
    }
    c.commit(t).unwrap();
}

#[test]
fn nested_savepoints_roll_back_in_layers() {
    let mut c = cluster(vec![4], 16);
    let p = PageId::new(NodeId(0), 0);
    let t = c.begin(NodeId(0)).unwrap();
    c.write_u64(t, p, 0, 1).unwrap();
    let sp1 = c.savepoint(t).unwrap();
    c.write_u64(t, p, 1, 2).unwrap();
    let sp2 = c.savepoint(t).unwrap();
    c.write_u64(t, p, 2, 3).unwrap();
    c.rollback_to(t, sp2).unwrap();
    c.write_u64(t, p, 3, 4).unwrap();
    c.rollback_to(t, sp1).unwrap();
    c.write_u64(t, p, 4, 5).unwrap();
    c.commit(t).unwrap();
    let t = c.begin(NodeId(0)).unwrap();
    assert_eq!(c.read_u64(t, p, 0).unwrap(), 1);
    assert_eq!(c.read_u64(t, p, 1).unwrap(), 0);
    assert_eq!(c.read_u64(t, p, 2).unwrap(), 0);
    assert_eq!(c.read_u64(t, p, 3).unwrap(), 0);
    assert_eq!(c.read_u64(t, p, 4).unwrap(), 5);
    c.commit(t).unwrap();
}

#[test]
fn rollback_after_eviction_refetches_pages() {
    let mut c = cluster(vec![6, 0], 2);
    let t = c.begin(NodeId(1)).unwrap();
    // Touch more pages than the cache holds, dirtying each.
    for i in 0..6 {
        c.write_u64(t, PageId::new(NodeId(0), i), 0, 100 + i as u64)
            .unwrap();
    }
    let ships_before = c.network().stats().count(cblog_net::MsgKind::PageShip);
    c.abort(t).unwrap();
    let ships_after = c.network().stats().count(cblog_net::MsgKind::PageShip);
    assert!(
        ships_after > ships_before,
        "undo had to re-fetch evicted pages from the owner (paper §2.2)"
    );
    let t = c.begin(NodeId(1)).unwrap();
    for i in 0..6 {
        assert_eq!(c.read_u64(t, PageId::new(NodeId(0), i), 0).unwrap(), 0);
    }
    c.commit(t).unwrap();
}

#[test]
fn bounded_logs_on_all_nodes_sustain_long_runs() {
    let mut c = Cluster::new(
        ClusterConfig::builder()
            .owned_pages(vec![8, 0, 0])
            .page_size(1024)
            .buffer_frames(16)
            .default_owned_pages(0)
            .log_capacity(Some(16 * 1024))
            .cost(CostModel::unit())
            .build(),
    )
    .unwrap();
    let cfg = WorkloadConfig {
        txns_per_client: 120,
        ops_per_txn: 4,
        write_ratio: 0.9,
        seed: 4,
        ..WorkloadConfig::default()
    };
    let specs = workload::generate(&cfg, &[NodeId(1), NodeId(2)], &pages(0, 8), None);
    let stats = run_workload(&mut c, specs).unwrap();
    assert_eq!(stats.committed, 240);
    stats.oracle.verify(&mut c, NodeId(1)).unwrap();
    // Logs stayed within bounds the whole time.
    for n in 0..3u32 {
        let lm = c.node(NodeId(n)).log();
        assert!(lm.used_space() <= 16 * 1024, "node {n} within capacity");
    }
}

#[test]
fn inter_transaction_caching_eliminates_repeat_messages() {
    let mut c = cluster(vec![4, 0], 16);
    let p = PageId::new(NodeId(0), 0);
    let t = c.begin(NodeId(1)).unwrap();
    c.write_u64(t, p, 0, 1).unwrap();
    c.commit(t).unwrap();
    let snap = c.network().stats();
    // 50 more transactions on the cached page + cached X lock.
    for i in 0..50u64 {
        let t = c.begin(NodeId(1)).unwrap();
        c.write_u64(t, p, 0, i).unwrap();
        c.commit(t).unwrap();
    }
    assert_eq!(
        c.network().stats().since(&snap).total_messages(),
        0,
        "inter-transaction caching: no lock or data traffic, no commit traffic"
    );
}
