//! Fault-injection integration tests: torn log tails swept over every
//! byte boundary of the unsynced tail, crash-during-recovery
//! idempotence for every protocol phase, and oracle-verified workloads
//! over a lossy network.

use cblog_common::{CostModel, Error, NodeId, PageId, RecoveryPhase};
use cblog_core::{recovery, Cluster, ClusterConfig, FaultPlan, GroupCommitPolicy, RecoveryOptions};
use cblog_sim::{run_workload, workload, WorkloadConfig};

fn cluster(owned: Vec<u32>, policy: GroupCommitPolicy, faults: FaultPlan) -> Cluster {
    Cluster::new(
        ClusterConfig::builder()
            .owned_pages(owned)
            .page_size(1024)
            .buffer_frames(16)
            .default_owned_pages(0)
            .cost(CostModel::unit())
            .group_commit(policy)
            .faults(faults)
            .build(),
    )
    .unwrap()
}

/// A group-commit window wide enough that nothing flushes on its own.
fn open_window() -> GroupCommitPolicy {
    GroupCommitPolicy::Window {
        window_us: 1_000_000,
        max_batch: 64,
    }
}

/// Client 1 submits three transactions into an open group-commit
/// window: the whole batch (update + commit records, in order) sits in
/// the unsynced tail. Returns the cluster and the three pages written.
fn open_batch() -> (Cluster, Vec<PageId>) {
    let mut c = cluster(vec![4, 0], open_window(), FaultPlan::default());
    let pages: Vec<PageId> = (0..3).map(|i| PageId::new(NodeId(0), i)).collect();
    // A committed warm-up transaction closes its own window, so the
    // tail afterwards holds exactly the test batch.
    let warm = c.begin(NodeId(1)).unwrap();
    c.write_u64(warm, pages[0], 1, 1).unwrap();
    c.commit(warm).unwrap();
    for (i, p) in pages.iter().enumerate() {
        let t = c.begin(NodeId(1)).unwrap();
        c.write_u64(t, *p, 0, 11 * (i as u64 + 1)).unwrap();
        c.commit_submit(t).unwrap();
        assert!(!c.poll_committed(t).unwrap(), "window still open");
    }
    (c, pages)
}

/// Tears the tail at every byte boundary (clean-cut and corrupted):
/// recovery must keep exactly a prefix of the submitted batch — no
/// partial transaction, no garbage value, monotone in landed bytes.
#[test]
fn torn_tail_at_every_byte_boundary_discards_an_exact_suffix() {
    let (probe, _) = open_batch();
    let pending = probe.pending_log_bytes(NodeId(1));
    assert!(pending > 0, "batch is unsynced");
    let mut prev_clean = 0usize;
    for landed in 0..=pending {
        for corrupt in [false, true] {
            let (mut c, pages) = open_batch();
            assert_eq!(
                c.pending_log_bytes(NodeId(1)),
                pending,
                "deterministic batch"
            );
            c.crash_torn(NodeId(1), landed, corrupt);
            recovery::recover(&mut c, &RecoveryOptions::single(NodeId(1))).unwrap();
            let t = c.begin(NodeId(0)).unwrap();
            let mut survived = Vec::new();
            for (i, p) in pages.iter().enumerate() {
                let v = c.read_u64(t, *p, 0).unwrap();
                let want = 11 * (i as u64 + 1);
                assert!(
                    v == want || v == 0,
                    "slot holds the committed value or nothing: got {v} at txn {i} \
                     (landed {landed}, corrupt {corrupt})"
                );
                survived.push(v == want);
            }
            c.commit(t).unwrap();
            // Exact-suffix discard: survivors form a prefix of the
            // batch (records land in submission order).
            for w in survived.windows(2) {
                assert!(
                    w[0] || !w[1],
                    "txn survived while an earlier one was discarded \
                     (landed {landed}, corrupt {corrupt}): {survived:?}"
                );
            }
            let n = survived.iter().filter(|s| **s).count();
            if corrupt {
                // Corrupting the last landed byte only invalidates.
                assert!(
                    n <= prev_clean,
                    "corrupt tear kept more than the clean one at landed {landed}"
                );
            } else {
                assert!(n >= prev_clean, "survivors monotone in landed bytes");
                prev_clean = n;
            }
        }
    }
    // The full tail, cleanly landed, commits the whole batch; with its
    // last byte corrupted the final commit record must be discarded.
    assert_eq!(prev_clean, 3, "full tail keeps every submitted commit");
    let (mut c, pages) = open_batch();
    c.crash_torn(NodeId(1), pending, true);
    recovery::recover(&mut c, &RecoveryOptions::single(NodeId(1))).unwrap();
    let t = c.begin(NodeId(0)).unwrap();
    assert_eq!(
        c.read_u64(t, pages[2], 0).unwrap(),
        0,
        "corrupted commit lost"
    );
    assert_eq!(
        c.read_u64(t, pages[1], 0).unwrap(),
        22,
        "earlier commit kept"
    );
    c.commit(t).unwrap();
}

/// Committed cross-node updates plus one forced loser, with the only
/// current images pushed into the owner's (about to be lost) buffer.
fn crashable_cluster() -> (Cluster, Vec<(PageId, u64)>) {
    let mut c = cluster(
        vec![6, 0, 0],
        GroupCommitPolicy::Immediate,
        FaultPlan::default(),
    );
    let mut expect = Vec::new();
    for round in 0..2u64 {
        for client in 1..=2u32 {
            let p = PageId::new(NodeId(0), (client - 1) + 2 * round as u32);
            let t = c.begin(NodeId(client)).unwrap();
            let v = 100 * round + client as u64;
            c.write_u64(t, p, 0, v).unwrap();
            c.commit(t).unwrap();
            expect.push((p, v));
        }
    }
    // A loser on the node about to crash: logged (forced) but never
    // committed, so recovery must undo it.
    let loser = c.begin(NodeId(0)).unwrap();
    c.write_u64(loser, PageId::new(NodeId(0), 5), 3, 666)
        .unwrap();
    c.node_mut(NodeId(0)).force_log().unwrap();
    expect.push((PageId::new(NodeId(0), 5), 0));
    for client in 1..=2u32 {
        for i in 0..6u32 {
            let _ = c.evict_page(NodeId(client), PageId::new(NodeId(0), i));
        }
    }
    (c, expect)
}

fn assert_recovered(c: &mut Cluster, expect: &[(PageId, u64)]) {
    let t = c.begin(NodeId(2)).unwrap();
    for &(p, v) in expect {
        assert_eq!(c.read_u64(t, p, if v == 0 { 3 } else { 0 }).unwrap(), v);
    }
    c.commit(t).unwrap();
}

/// Injects a crash after each recovery phase in turn; re-running
/// recovery from scratch must complete and converge to the same state.
#[test]
fn crash_during_recovery_is_idempotent_after_every_phase() {
    for &phase in RecoveryPhase::ALL.iter() {
        let (mut c, expect) = crashable_cluster();
        c.crash(NodeId(0));
        let err = recovery::recover(
            &mut c,
            &RecoveryOptions::single(NodeId(0)).crash_after(phase),
        )
        .unwrap_err();
        match err {
            Error::RecoveryInterrupted(p) => assert_eq!(p, phase),
            other => panic!("expected RecoveryInterrupted({phase}), got {other}"),
        }
        let rep = recovery::recover(&mut c, &RecoveryOptions::single(NodeId(0)))
            .unwrap_or_else(|e| panic!("re-run after {phase} crash failed: {e}"));
        assert_eq!(rep.recovered_nodes, vec![NodeId(0)]);
        assert_recovered(&mut c, &expect);
    }
}

/// One cluster surviving an interruption after every phase in
/// sequence — ten restarts of the same recovery — still converges.
#[test]
fn repeatedly_interrupted_recovery_still_converges() {
    let (mut c, expect) = crashable_cluster();
    c.crash(NodeId(0));
    for &phase in RecoveryPhase::ALL.iter() {
        let err = recovery::recover(
            &mut c,
            &RecoveryOptions::single(NodeId(0)).crash_after(phase),
        )
        .unwrap_err();
        assert!(matches!(err, Error::RecoveryInterrupted(p) if p == phase));
    }
    recovery::recover(&mut c, &RecoveryOptions::single(NodeId(0))).unwrap();
    assert_recovered(&mut c, &expect);
}

/// A lossy, delaying, duplicating, reordering network: every
/// transaction still commits (bounded retries mask the faults) and the
/// committed state matches the oracle exactly.
#[test]
fn lossy_network_workload_is_oracle_verified() {
    let plan = FaultPlan::new(0xBAD)
        .with_drop(0.1)
        .with_delay(0.1, 200)
        .with_duplicate(0.05)
        .with_reorder(0.05);
    let mut c = cluster(vec![8, 0, 0], GroupCommitPolicy::Immediate, plan);
    let cfg = WorkloadConfig {
        txns_per_client: 25,
        ops_per_txn: 5,
        write_ratio: 0.7,
        seed: 42,
        ..WorkloadConfig::default()
    };
    let specs = workload::generate(
        &cfg,
        &[NodeId(1), NodeId(2)],
        &workload::owned_pages(NodeId(0), 8),
        None,
    );
    let stats = run_workload(&mut c, specs).unwrap();
    assert_eq!(stats.committed, 50, "no commit lost to the network");
    assert!(stats.faults.dropped > 0, "the injector actually fired");
    assert!(stats.faults.retries > 0, "drops were masked by resends");
    assert_eq!(stats.faults.exhausted, 0, "retry budget never exhausted");
    let verified = stats.oracle.verify(&mut c, NodeId(1)).unwrap();
    assert!(verified > 0);
}

/// Fast fault matrix: drop × tear combinations, each run through
/// workload → crash → recovery → oracle verification.
#[test]
fn fault_matrix_smoke() {
    for (i, drop) in [0.0f64, 0.05, 0.2].into_iter().enumerate() {
        for (j, tear) in [0.0f64, 1.0].into_iter().enumerate() {
            let plan = FaultPlan::new(7 + (i * 2 + j) as u64)
                .with_drop(drop)
                .with_tear(tear);
            let mut c = cluster(vec![4, 0], GroupCommitPolicy::Immediate, plan);
            let cfg = WorkloadConfig {
                txns_per_client: 10,
                ops_per_txn: 3,
                write_ratio: 1.0,
                seed: 1 + i as u64,
                ..WorkloadConfig::default()
            };
            let specs = workload::generate(
                &cfg,
                &[NodeId(1)],
                &workload::owned_pages(NodeId(0), 4),
                None,
            );
            let stats = run_workload(&mut c, specs).unwrap();
            assert_eq!(stats.committed, 10);
            // Leave unsynced loser bytes for the tear to bite.
            let loser = c.begin(NodeId(1)).unwrap();
            c.write_u64(loser, PageId::new(NodeId(0), 0), 7, 999)
                .unwrap();
            let pending = c.pending_log_bytes(NodeId(1));
            c.crash(NodeId(1));
            let rep = recovery::recover(&mut c, &RecoveryOptions::single(NodeId(1))).unwrap();
            assert!(rep.torn_bytes_discarded <= pending);
            if tear == 0.0 {
                assert_eq!(rep.torn_bytes_discarded, 0);
            }
            // Torn or not, the uncommitted loser never resurfaces.
            let t = c.begin(NodeId(0)).unwrap();
            assert_ne!(c.read_u64(t, PageId::new(NodeId(0), 0), 7).unwrap(), 999);
            c.commit(t).unwrap();
            assert_eq!(
                c.network().fault_stats().exhausted,
                0,
                "retries stayed bounded"
            );
            stats.oracle.verify(&mut c, NodeId(0)).unwrap();
        }
    }
}
