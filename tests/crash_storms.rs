//! Crash-storm integration tests: crashes injected between workload
//! phases, repeated and combined, always ending in a full oracle
//! verification. Exercises §2.3 and §2.4 under messier histories than
//! the unit tests.

use cblog_common::{CostModel, NodeId, PageId};
use cblog_core::{recovery, Cluster, ClusterConfig, RecoveryOptions};
use cblog_sim::{run_workload, workload, Oracle, WorkloadConfig};

fn cluster(owned: Vec<u32>, frames: usize) -> Cluster {
    Cluster::new(
        ClusterConfig::builder()
            .owned_pages(owned)
            .page_size(1024)
            .buffer_frames(frames)
            .default_owned_pages(0)
            .cost(CostModel::unit())
            .build(),
    )
    .unwrap()
}

fn pages(owner: u32, n: u32) -> Vec<PageId> {
    (0..n).map(|i| PageId::new(NodeId(owner), i)).collect()
}

fn phase(c: &mut Cluster, clients: &[NodeId], pgs: &[PageId], seed: u64, oracle: &mut Oracle) {
    let cfg = WorkloadConfig {
        txns_per_client: 15,
        ops_per_txn: 5,
        write_ratio: 0.7,
        seed,
        ..WorkloadConfig::default()
    };
    let specs = workload::generate(&cfg, clients, pgs, None);
    let stats = run_workload(c, specs).unwrap();
    merge_oracle(oracle, stats.oracle);
}

fn merge_oracle(into: &mut Oracle, from: Oracle) {
    // Later phases overwrite earlier committed values; keys are stable
    // so re-staging through a fresh key works.
    // (Oracle exposes only expect(); rebuild via its committed view.)
    // Simplest correct merge: stage+commit each known slot.
    let mut key = u64::MAX; // disjoint from driver keys
    for (pid, slot, v) in drain_committed(&from) {
        into.stage(key, pid, slot, v);
        into.commit(key);
        key -= 1;
    }
}

fn drain_committed(o: &Oracle) -> Vec<(PageId, usize, u64)> {
    // The oracle keeps committed values private; enumerate via its
    // public probe over the page/slot space used in these tests.
    let mut out = Vec::new();
    for owner in 0..4u32 {
        for idx in 0..16u32 {
            let pid = PageId::new(NodeId(owner), idx);
            for slot in 0..16usize {
                if let Some(v) = o.expect(pid, slot) {
                    out.push((pid, slot, v));
                }
            }
        }
    }
    out
}

#[test]
fn owner_crash_between_phases() {
    let mut c = cluster(vec![8, 0, 0], 16);
    let clients = [NodeId(1), NodeId(2)];
    let pgs = pages(0, 8);
    let mut oracle = Oracle::new();
    phase(&mut c, &clients, &pgs, 10, &mut oracle);
    // Make the owner's buffer the only holder of some current images.
    for p in &pgs {
        let _ = c.evict_page(NodeId(1), *p);
        let _ = c.evict_page(NodeId(2), *p);
    }
    c.crash(NodeId(0));
    recovery::recover(&mut c, &RecoveryOptions::single(NodeId(0))).unwrap();
    phase(&mut c, &clients, &pgs, 11, &mut oracle);
    oracle.verify(&mut c, NodeId(1)).unwrap();
}

#[test]
fn client_crash_between_phases() {
    let mut c = cluster(vec![8, 0, 0], 16);
    let clients = [NodeId(1), NodeId(2)];
    let pgs = pages(0, 8);
    let mut oracle = Oracle::new();
    phase(&mut c, &clients, &pgs, 20, &mut oracle);
    c.crash(NodeId(1));
    recovery::recover(&mut c, &RecoveryOptions::single(NodeId(1))).unwrap();
    phase(&mut c, &clients, &pgs, 21, &mut oracle);
    oracle.verify(&mut c, NodeId(2)).unwrap();
}

#[test]
fn repeated_crashes_of_the_same_owner() {
    let mut c = cluster(vec![8, 0], 16);
    let clients = [NodeId(1)];
    let pgs = pages(0, 8);
    let mut oracle = Oracle::new();
    for round in 0..4u64 {
        phase(&mut c, &clients, &pgs, 30 + round, &mut oracle);
        for p in &pgs {
            let _ = c.evict_page(NodeId(1), *p);
        }
        c.crash(NodeId(0));
        recovery::recover(&mut c, &RecoveryOptions::single(NodeId(0))).unwrap();
        oracle.verify(&mut c, NodeId(1)).unwrap();
    }
}

#[test]
fn alternating_owner_and_client_crashes() {
    let mut c = cluster(vec![8, 0, 0], 16);
    let clients = [NodeId(1), NodeId(2)];
    let pgs = pages(0, 8);
    let mut oracle = Oracle::new();
    for round in 0..3u64 {
        phase(&mut c, &clients, &pgs, 40 + round, &mut oracle);
        let victim = if round % 2 == 0 { NodeId(0) } else { NodeId(2) };
        if victim == NodeId(0) {
            for p in &pgs {
                let _ = c.evict_page(NodeId(1), *p);
                let _ = c.evict_page(NodeId(2), *p);
            }
        }
        c.crash(victim);
        recovery::recover(&mut c, &RecoveryOptions::single(victim)).unwrap();
        oracle.verify(&mut c, NodeId(1)).unwrap();
    }
}

#[test]
fn simultaneous_owner_and_client_crash() {
    let mut c = cluster(vec![8, 0, 0], 16);
    let clients = [NodeId(1), NodeId(2)];
    let pgs = pages(0, 8);
    let mut oracle = Oracle::new();
    phase(&mut c, &clients, &pgs, 50, &mut oracle);
    for p in &pgs {
        let _ = c.evict_page(NodeId(1), *p);
    }
    c.crash(NodeId(0));
    c.crash(NodeId(1));
    let rep = recovery::recover(&mut c, &RecoveryOptions::nodes(&[NodeId(0), NodeId(1)])).unwrap();
    assert_eq!(rep.recovered_nodes.len(), 2);
    oracle.verify(&mut c, NodeId(2)).unwrap();
    phase(&mut c, &clients, &pgs, 51, &mut oracle);
    oracle.verify(&mut c, NodeId(1)).unwrap();
}

#[test]
fn all_nodes_crash_and_recover_together() {
    let mut c = cluster(vec![6, 0, 6, 0], 16);
    let clients: Vec<NodeId> = (0..4).map(NodeId).collect();
    let mut pgs = pages(0, 6);
    pgs.extend(pages(2, 6));
    let mut oracle = Oracle::new();
    phase(&mut c, &clients, &pgs, 60, &mut oracle);
    for n in 0..4u32 {
        c.crash(NodeId(n));
    }
    let all: Vec<NodeId> = (0..4).map(NodeId).collect();
    recovery::recover(&mut c, &RecoveryOptions::nodes(&all)).unwrap();
    oracle.verify(&mut c, NodeId(3)).unwrap();
}

#[test]
fn losers_at_crash_are_invisible_afterwards() {
    let mut c = cluster(vec![8, 0, 0], 16);
    let pgs = pages(0, 8);
    // Commit a baseline.
    let t = c.begin(NodeId(1)).unwrap();
    for (i, p) in pgs.iter().enumerate() {
        c.write_u64(t, *p, 0, 1000 + i as u64).unwrap();
    }
    c.commit(t).unwrap();
    // Leave an in-flight transaction with durable-but-uncommitted
    // records on node 2, and crash node 2.
    let loser = c.begin(NodeId(2)).unwrap();
    c.write_u64(loser, pgs[0], 0, 9999).unwrap();
    c.write_u64(loser, pgs[1], 0, 9999).unwrap();
    c.node_mut(NodeId(2)).force_log().unwrap();
    c.crash(NodeId(2));
    let rep = recovery::recover(&mut c, &RecoveryOptions::single(NodeId(2))).unwrap();
    assert_eq!(rep.losers_undone, 1);
    let t = c.begin(NodeId(1)).unwrap();
    assert_eq!(c.read_u64(t, pgs[0], 0).unwrap(), 1000);
    assert_eq!(c.read_u64(t, pgs[1], 0).unwrap(), 1001);
    c.commit(t).unwrap();
}

/// Regression (found by the `cblog-mc` crash-point explorer, shrunk by
/// its minimizer): a client's uncommitted dirty page is evicted to its
/// owner — the loser update now lives in the owner's buffer, guarded
/// only by the owner's volatile fence lock — and then client *and*
/// owner crash together. The crashed owner's lock table took the fence
/// with it, and the crashed client cannot be called back, so unless
/// phase 2 re-derives the client's exclusive claims from its own
/// durable log, replay re-applies the loser update on the owner while
/// undo CLRs a private copy on the client, and readers see the
/// uncommitted value.
#[test]
fn double_crash_evicted_loser_does_not_resurface() {
    let mut c = cluster(vec![4, 0, 0], 16);
    let p = PageId::new(NodeId(0), 2);
    let loser = c.begin(NodeId(1)).unwrap();
    c.write_u64(loser, p, 3, 999).unwrap();
    c.evict_page(NodeId(1), p).unwrap();
    c.crash(NodeId(0));
    c.crash(NodeId(1));
    recovery::recover(&mut c, &RecoveryOptions::nodes(&[NodeId(0), NodeId(1)])).unwrap();
    let t = c.begin(NodeId(2)).unwrap();
    assert_eq!(c.read_u64(t, p, 3).unwrap(), 0, "loser write resurfaced");
    c.commit(t).unwrap();
}

/// The same double crash with committed history, torn tails on both
/// victims, and an interrupted-then-rerun recovery — the widened
/// neighborhood of the shrunk regression above.
#[test]
fn double_crash_evicted_loser_with_history_and_tears() {
    let mut c = cluster(vec![4, 0, 0], 16);
    let p0 = PageId::new(NodeId(0), 0);
    let p2 = PageId::new(NodeId(0), 2);
    let t = c.begin(NodeId(2)).unwrap();
    c.write_u64(t, p0, 0, 555).unwrap();
    c.commit(t).unwrap();
    let loser = c.begin(NodeId(1)).unwrap();
    c.write_u64(loser, p2, 0, 999).unwrap();
    c.write_u64(loser, p2, 3, 999).unwrap();
    c.evict_page(NodeId(1), p2).unwrap();
    let full = c.pending_log_bytes(NodeId(1));
    c.crash_torn(NodeId(0), 0, false);
    c.crash_torn(NodeId(1), full, true);
    let opts = RecoveryOptions::nodes(&[NodeId(0), NodeId(1)]);
    use cblog_common::RecoveryPhase;
    let err = recovery::recover(&mut c, &opts.clone().crash_after(RecoveryPhase::Replay));
    assert!(err.is_err(), "interrupt injected");
    recovery::recover(&mut c, &opts).unwrap();
    let t = c.begin(NodeId(2)).unwrap();
    assert_eq!(c.read_u64(t, p0, 0).unwrap(), 555, "committed write lost");
    assert_eq!(
        c.read_u64(t, p2, 0).unwrap(),
        0,
        "loser overwrite resurfaced"
    );
    assert_eq!(c.read_u64(t, p2, 3).unwrap(), 0, "loser marker resurfaced");
    c.commit(t).unwrap();
}
