//! File-backed durability: the database and WAL survive real process
//! restarts (the file handles are dropped and re-opened), and ARIES
//! restart over the on-disk log reconstructs exactly the committed
//! state. This exercises `FileStorage` / `FileLogStore` end to end —
//! the same code paths the in-memory stores simulate everywhere else.

use cblog_common::{Lsn, NodeId, PageId, Psn, TxnId};
use cblog_storage::{Database, FileStorage, Page, PageKind};
use cblog_wal::{CheckpointBody, FileLogStore, LogManager, LogPayload, LogRecord, PageOp};
use std::path::PathBuf;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!(
            "cblog-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const PAGE: usize = 512;
const NODE: NodeId = NodeId(1);

fn open_db(dir: &TempDir, create: bool) -> Database {
    let storage = Box::new(FileStorage::open(&dir.path("db"), PAGE).unwrap());
    if create {
        let mut db = Database::create(storage, NODE, 4).unwrap();
        for _ in 0..4 {
            db.allocate_page(PageKind::Raw).unwrap();
        }
        db
    } else {
        Database::open(storage).unwrap()
    }
}

fn open_log(dir: &TempDir) -> LogManager {
    let store = Box::new(FileLogStore::open(&dir.path("wal")).unwrap());
    LogManager::new(NODE, store).unwrap()
}

fn upd(
    txn: TxnId,
    prev: Lsn,
    pid: PageId,
    psn: Psn,
    slot: usize,
    before: u64,
    after: u64,
) -> LogRecord {
    LogRecord {
        txn,
        prev_lsn: prev,
        payload: LogPayload::Update {
            pid,
            psn_before: psn,
            op: PageOp::WriteRange {
                off: (slot * 8) as u32,
                before: before.to_le_bytes().to_vec(),
                after: after.to_le_bytes().to_vec(),
            },
        },
    }
}

#[test]
fn committed_work_survives_reopen_without_page_writes() {
    let dir = TempDir::new("redo");
    let pid = PageId::new(NODE, 0);
    let txn = TxnId::new(NODE, 1);

    // Life 1: log a committed update, force the log, but never write
    // the page — then "crash" by dropping everything.
    {
        let mut db = open_db(&dir, true);
        let mut log = open_log(&dir);
        let page = db.read_page(0).unwrap();
        assert_eq!(page.psn(), Psn(1));
        let begin = log
            .append(&LogRecord {
                txn,
                prev_lsn: Lsn::ZERO,
                payload: LogPayload::Begin,
            })
            .unwrap();
        let u = log
            .append(&upd(txn, begin, pid, Psn(1), 0, 0, 777))
            .unwrap();
        let c = log
            .append(&LogRecord {
                txn,
                prev_lsn: u,
                payload: LogPayload::Commit,
            })
            .unwrap();
        log.force(c).unwrap();
        // Page deliberately NOT written: disk still has PSN 1, zeros.
    }

    // Life 2: reopen, replay with the PSN filter, verify.
    {
        let mut db = open_db(&dir, false);
        let mut log = open_log(&dir);
        let mut page = db.read_page(0).unwrap();
        assert_eq!(page.psn(), Psn(1), "page never reached disk");
        let mut pos = Lsn(8);
        let end = log.end_lsn();
        let mut applied = 0;
        while pos < end {
            let (rec, next) = log.read_record(pos).unwrap();
            if rec.page() == Some(pid) && rec.psn_before() == Some(page.psn()) {
                rec.op().unwrap().apply_redo(&mut page).unwrap();
                page.set_psn(rec.psn_before().unwrap().next());
                applied += 1;
            }
            pos = next;
        }
        assert_eq!(applied, 1);
        assert_eq!(page.read_slot(0).unwrap(), 777);
        db.write_page(&page).unwrap();
        db.sync().unwrap();
    }

    // Life 3: the replayed write is durable; replay is now a no-op.
    {
        let mut db = open_db(&dir, false);
        let page = db.read_page(0).unwrap();
        assert_eq!(page.psn(), Psn(2));
        assert_eq!(page.read_slot(0).unwrap(), 777);
    }
}

#[test]
fn unforced_tail_is_lost_on_reopen() {
    let dir = TempDir::new("tail");
    let pid = PageId::new(NODE, 0);
    let txn = TxnId::new(NODE, 1);
    let forced_end;
    {
        let mut _db = open_db(&dir, true);
        let mut log = open_log(&dir);
        let begin = log
            .append(&LogRecord {
                txn,
                prev_lsn: Lsn::ZERO,
                payload: LogPayload::Begin,
            })
            .unwrap();
        log.force_all().unwrap();
        forced_end = log.end_lsn();
        // Unforced records: lost when the handle drops without force.
        let _ = log.append(&upd(txn, begin, pid, Psn(1), 0, 0, 1)).unwrap();
    }
    {
        let log = open_log(&dir);
        assert_eq!(
            log.end_lsn(),
            forced_end,
            "reopen sees only the forced prefix"
        );
    }
}

#[test]
fn master_record_and_checkpoint_survive_reopen() {
    let dir = TempDir::new("master");
    let sys = TxnId::new(NODE, 0);
    let ckpt;
    {
        let mut log = open_log(&dir);
        ckpt = log
            .append(&LogRecord {
                txn: sys,
                prev_lsn: Lsn::ZERO,
                payload: LogPayload::CheckpointBegin,
            })
            .unwrap();
        log.append(&LogRecord {
            txn: sys,
            prev_lsn: ckpt,
            payload: LogPayload::CheckpointEnd(CheckpointBody::default()),
        })
        .unwrap();
        log.force_all().unwrap();
        log.write_master(ckpt).unwrap();
    }
    {
        let mut log = open_log(&dir);
        assert_eq!(log.last_checkpoint(), ckpt);
        // The checkpoint records are readable from the anchor.
        let (rec, next) = log.read_record(ckpt).unwrap();
        assert_eq!(rec.payload, LogPayload::CheckpointBegin);
        let (rec2, _) = log.read_record(next).unwrap();
        assert!(matches!(rec2.payload, LogPayload::CheckpointEnd(_)));
    }
}

#[test]
fn database_space_map_persists_across_alloc_free_cycles() {
    let dir = TempDir::new("spacemap");
    {
        let mut db = open_db(&dir, true);
        // Free page 2 at a high PSN.
        let mut page = db.read_page(2).unwrap();
        for _ in 0..20 {
            page.bump_psn();
        }
        db.write_page(&page).unwrap();
        db.free_page(2, page.psn()).unwrap();
        db.sync().unwrap();
    }
    {
        let mut db = open_db(&dir, false);
        assert_eq!(db.space_map().allocated_count(), 3);
        // Reallocation respects the persisted PSN floor.
        let p = db.allocate_page(PageKind::Raw).unwrap();
        assert_eq!(p.id().index, 2);
        assert!(p.psn() > Psn(20), "PSN floor persisted: {:?}", p.psn());
    }
}

#[test]
fn torn_page_write_detected_on_reopen() {
    let dir = TempDir::new("torn");
    {
        let mut db = open_db(&dir, true);
        let mut page = db.read_page(0).unwrap();
        page.write_slot(0, 42).unwrap();
        page.bump_psn();
        db.write_page(&page).unwrap();
        db.sync().unwrap();
    }
    // Corrupt one byte of page 0 on disk (it lives after the
    // superblock + space map block).
    {
        use std::io::{Seek, SeekFrom, Write};
        let mut f = std::fs::OpenOptions::new()
            .write(true)
            .open(dir.path("db"))
            .unwrap();
        let page0_offset = (2 * PAGE + PAGE / 2) as u64; // middle of page 0's block
        f.seek(SeekFrom::Start(page0_offset)).unwrap();
        f.write_all(&[0xAB]).unwrap();
        f.sync_data().unwrap();
    }
    {
        let mut db = open_db(&dir, false);
        let r = db.read_page(0);
        assert!(
            matches!(r, Err(cblog_common::Error::Corrupt(_))),
            "torn write must be detected, got {r:?}"
        );
    }
}

#[test]
fn full_node_lifecycle_on_files_via_manual_composition() {
    // A miniature single-node "engine" built directly on the
    // file-backed parts: run transactions, checkpoint, crash (drop),
    // restart with analysis + PSN-filtered redo, verify.
    let dir = TempDir::new("engine");
    let pid = PageId::new(NODE, 0);

    // Life 1: two committed transactions and one loser.
    {
        let mut db = open_db(&dir, true);
        let mut log = open_log(&dir);
        let mut page = db.read_page(0).unwrap();

        let do_txn =
            |log: &mut LogManager, page: &mut Page, seq: u64, slot: usize, v: u64, commit: bool| {
                let txn = TxnId::new(NODE, seq);
                let begin = log
                    .append(&LogRecord {
                        txn,
                        prev_lsn: Lsn::ZERO,
                        payload: LogPayload::Begin,
                    })
                    .unwrap();
                let before = page.read_slot(slot).unwrap();
                let u = log
                    .append(&upd(txn, begin, pid, page.psn(), slot, before, v))
                    .unwrap();
                page.write_slot(slot, v).unwrap();
                page.bump_psn();
                if commit {
                    let c = log
                        .append(&LogRecord {
                            txn,
                            prev_lsn: u,
                            payload: LogPayload::Commit,
                        })
                        .unwrap();
                    log.force(c).unwrap();
                } else {
                    // Loser: records durable (forced) but no commit.
                    log.force_all().unwrap();
                }
            };
        do_txn(&mut log, &mut page, 1, 0, 11, true);
        do_txn(&mut log, &mut page, 2, 1, 22, true);
        do_txn(&mut log, &mut page, 3, 2, 33, false); // loser
                                                      // Crash: nothing written to the database file.
    }

    // Life 2: restart — redo everything (PSN filter), undo the loser.
    {
        let mut db = open_db(&dir, false);
        let mut log = open_log(&dir);
        let mut page = db.read_page(0).unwrap();
        assert_eq!(page.psn(), Psn(1));

        // Analysis: find losers.
        let mut active: std::collections::HashMap<TxnId, Vec<(Psn, PageOp)>> =
            std::collections::HashMap::new();
        let mut pos = Lsn(8);
        let end = log.end_lsn();
        let mut history: Vec<(Psn, PageOp)> = Vec::new();
        while pos < end {
            let (rec, next) = log.read_record(pos).unwrap();
            match &rec.payload {
                LogPayload::Begin => {
                    active.insert(rec.txn, Vec::new());
                }
                LogPayload::Update { psn_before, op, .. } => {
                    history.push((*psn_before, op.clone()));
                    if let Some(v) = active.get_mut(&rec.txn) {
                        v.push((*psn_before, op.clone()));
                    }
                }
                LogPayload::Commit | LogPayload::Abort => {
                    active.remove(&rec.txn);
                }
                _ => {}
            }
            pos = next;
        }
        // Redo.
        for (psn, op) in &history {
            if page.psn() == *psn {
                op.apply_redo(&mut page).unwrap();
                page.set_psn(psn.next());
            }
        }
        assert_eq!(page.read_slot(0).unwrap(), 11);
        assert_eq!(page.read_slot(1).unwrap(), 22);
        assert_eq!(page.read_slot(2).unwrap(), 33, "loser redone before undo");
        // Undo losers (reverse order), with CLRs.
        assert_eq!(active.len(), 1);
        for (txn, ops) in active {
            let mut prev = Lsn::ZERO;
            for (_, op) in ops.iter().rev() {
                let inv = op.inverse();
                let psn_before = page.psn();
                inv.apply_redo(&mut page).unwrap();
                page.set_psn(psn_before.next());
                prev = log
                    .append(&LogRecord {
                        txn,
                        prev_lsn: prev,
                        payload: LogPayload::Clr {
                            pid,
                            psn_before,
                            op: inv,
                            undo_next: Lsn::ZERO,
                        },
                    })
                    .unwrap();
            }
            log.append(&LogRecord {
                txn,
                prev_lsn: prev,
                payload: LogPayload::Abort,
            })
            .unwrap();
        }
        log.force_all().unwrap();
        db.write_page(&page).unwrap();
        db.sync().unwrap();
    }

    // Life 3: stable, loser gone.
    {
        let mut db = open_db(&dir, false);
        let page = db.read_page(0).unwrap();
        assert_eq!(page.read_slot(0).unwrap(), 11);
        assert_eq!(page.read_slot(1).unwrap(), 22);
        assert_eq!(page.read_slot(2).unwrap(), 0, "loser undone durably");
    }
}
