//! Crash compositions the per-crate unit tests never exercise: torn
//! initial crashes composed with standby-coordinated recovery,
//! multi-crash (client + owner) recovery, phase-boundary
//! interruptions, re-runs, and open group-commit windows. These are
//! the hand-picked seeds of the space the model checker
//! (`cblog-mc`) enumerates exhaustively.

use cblog_common::{CostModel, Error, NodeId, PageId, RecoveryPhase};
use cblog_core::{
    recovery, Cluster, ClusterConfig, FaultPlan, GroupCommitPolicy, RecoveryOptions, ReplayMode,
};

fn cluster(owned: Vec<u32>, policy: GroupCommitPolicy, tracing: bool) -> Cluster {
    Cluster::new(
        ClusterConfig::builder()
            .owned_pages(owned)
            .page_size(1024)
            .buffer_frames(16)
            .default_owned_pages(0)
            .cost(CostModel::unit())
            .group_commit(policy)
            .faults(FaultPlan::default())
            .tracing(tracing)
            .build(),
    )
    .unwrap()
}

/// Committed state + an in-flight (unforced) transaction on node 1.
fn setup() -> (Cluster, Vec<(PageId, u64)>) {
    let mut c = cluster(vec![4, 0, 0], GroupCommitPolicy::Immediate, true);
    let mut expect = Vec::new();
    for i in 0..4u32 {
        let p = PageId::new(NodeId(0), i % 4);
        let t = c.begin(NodeId(1 + (i % 2))).unwrap();
        let v = 100 + i as u64;
        c.write_u64(t, p, 0, v).unwrap();
        c.commit(t).unwrap();
        expect.retain(|(q, _)| *q != p);
        expect.push((p, v));
    }
    let t = c.begin(NodeId(1)).unwrap();
    c.write_u64(t, PageId::new(NodeId(0), 0), 3, 777).unwrap();
    (c, expect)
}

/// Standby-coordinated recovery interrupted after every phase, with a
/// torn initial crash.
#[test]
fn standby_torn_interrupted_recovery_converges() {
    let (probe, _) = setup();
    let pending = probe.pending_log_bytes(NodeId(1));
    for landed in [0, 1, pending / 2, pending] {
        for corrupt in [false, true] {
            for &phase in RecoveryPhase::ALL.iter() {
                let (mut c, expect) = setup();
                c.crash_torn(NodeId(1), landed, corrupt);
                let err = recovery::recover(
                    &mut c,
                    &RecoveryOptions::single(NodeId(1))
                        .with_standby(NodeId(2))
                        .crash_after(phase),
                )
                .unwrap_err();
                assert!(matches!(err, Error::RecoveryInterrupted(p) if p == phase));
                recovery::recover(
                    &mut c,
                    &RecoveryOptions::single(NodeId(1)).with_standby(NodeId(2)),
                )
                .unwrap_or_else(|e| {
                    panic!("landed={landed} corrupt={corrupt} phase={phase}: rerun: {e}")
                });
                let t = c.begin(NodeId(2)).unwrap();
                for &(p, v) in &expect {
                    assert_eq!(c.read_u64(t, p, 0).unwrap(), v);
                }
                assert_eq!(c.read_u64(t, PageId::new(NodeId(0), 0), 3).unwrap(), 0);
                c.commit(t).unwrap();
                c.trace_check().unwrap();
            }
        }
    }
}

/// Multi-crash (owner + client), both torn, interrupted after each
/// phase, then re-run. Also cross-checks Serial vs Parallel replay.
#[test]
fn multi_crash_double_torn_interrupted_converges() {
    let build = || {
        let mut c = cluster(vec![4, 0, 0], GroupCommitPolicy::Immediate, true);
        let mut expect = Vec::new();
        for i in 0..6u32 {
            let p = PageId::new(NodeId(0), i % 4);
            let t = c.begin(NodeId(1 + (i % 2))).unwrap();
            let v = 300 + i as u64;
            c.write_u64(t, p, 0, v).unwrap();
            c.commit(t).unwrap();
            expect.retain(|(q, _)| *q != p);
            expect.push((p, v));
        }
        // In-flight txns on both victims.
        let t0 = c.begin(NodeId(0)).unwrap();
        c.write_u64(t0, PageId::new(NodeId(0), 1), 3, 888).unwrap();
        let t1 = c.begin(NodeId(1)).unwrap();
        c.write_u64(t1, PageId::new(NodeId(0), 2), 3, 999).unwrap();
        // Owner's buffer holds the only current images.
        for i in 0..4u32 {
            let p = PageId::new(NodeId(0), i);
            let _ = c.evict_page(NodeId(1), p);
            let _ = c.evict_page(NodeId(2), p);
        }
        (c, expect)
    };
    let (probe, _) = build();
    let p0 = probe.pending_log_bytes(NodeId(0));
    let p1 = probe.pending_log_bytes(NodeId(1));
    for landed0 in [0, p0 / 2, p0] {
        for landed1 in [0, p1 / 2, p1] {
            for &phase in RecoveryPhase::ALL.iter() {
                for mode in [ReplayMode::Serial, ReplayMode::Parallel { workers: 2 }] {
                    let (mut c, expect) = build();
                    c.crash_torn(NodeId(0), landed0, true);
                    c.crash_torn(NodeId(1), landed1, true);
                    let opts = RecoveryOptions::nodes(&[NodeId(0), NodeId(1)]).replay(mode);
                    let err =
                        recovery::recover(&mut c, &opts.clone().crash_after(phase)).unwrap_err();
                    assert!(matches!(err, Error::RecoveryInterrupted(p) if p == phase));
                    recovery::recover(&mut c, &opts).unwrap_or_else(|e| {
                        panic!("l0={landed0} l1={landed1} phase={phase} {mode:?}: rerun: {e}")
                    });
                    let t = c.begin(NodeId(2)).unwrap();
                    for &(p, v) in &expect {
                        let got = c.read_u64(t, p, 0).unwrap();
                        assert_eq!(got, v, "l0={landed0} l1={landed1} phase={phase} {mode:?}");
                    }
                    assert_eq!(c.read_u64(t, PageId::new(NodeId(0), 1), 3).unwrap(), 0);
                    assert_eq!(c.read_u64(t, PageId::new(NodeId(0), 2), 3).unwrap(), 0);
                    c.commit(t).unwrap();
                    c.trace_check().unwrap_or_else(|e| {
                        panic!("l0={landed0} l1={landed1} phase={phase} {mode:?}: watchdog: {e}")
                    });
                }
            }
        }
    }
}

/// Open adaptive/window group-commit batch torn per byte, then an
/// interrupted recovery: only polled-durable commits may survive.
#[test]
fn open_window_torn_interrupted_only_acked_survive() {
    let policy = GroupCommitPolicy::Window {
        window_us: 1_000_000,
        max_batch: 64,
    };
    let build = || {
        let mut c = cluster(vec![4, 0], policy, true);
        // Warm-up committed synchronously.
        let warm = c.begin(NodeId(1)).unwrap();
        c.write_u64(warm, PageId::new(NodeId(0), 3), 0, 5).unwrap();
        c.commit(warm).unwrap();
        let mut txns = Vec::new();
        for i in 0..3u32 {
            let t = c.begin(NodeId(1)).unwrap();
            c.write_u64(t, PageId::new(NodeId(0), i), 0, 10 + i as u64)
                .unwrap();
            c.commit_submit(t).unwrap();
            txns.push(t);
        }
        (c, txns)
    };
    let (probe, _) = build();
    let pending = probe.pending_log_bytes(NodeId(1));
    assert!(pending > 0);
    for landed in 0..=pending {
        for &phase in &[RecoveryPhase::Analysis, RecoveryPhase::Undo] {
            let (mut c, txns) = build();
            let acked: Vec<bool> = txns.iter().map(|t| c.poll_committed(*t).unwrap()).collect();
            assert!(acked.iter().all(|a| !a), "window still open");
            c.crash_torn(NodeId(1), landed, false);
            let err = recovery::recover(
                &mut c,
                &RecoveryOptions::single(NodeId(1)).crash_after(phase),
            )
            .unwrap_err();
            assert!(matches!(err, Error::RecoveryInterrupted(p) if p == phase));
            recovery::recover(&mut c, &RecoveryOptions::single(NodeId(1))).unwrap();
            let t = c.begin(NodeId(0)).unwrap();
            assert_eq!(
                c.read_u64(t, PageId::new(NodeId(0), 3), 0).unwrap(),
                5,
                "acked warm-up survives (landed={landed} phase={phase})"
            );
            // Unacked commits: all-or-prefix semantics, no garbage.
            let mut vals = Vec::new();
            for i in 0..3u32 {
                let v = c.read_u64(t, PageId::new(NodeId(0), i), 0).unwrap();
                assert!(v == 0 || v == 10 + i as u64, "garbage {v} at {i}");
                vals.push(v != 0);
            }
            for w in vals.windows(2) {
                assert!(
                    w[0] || !w[1],
                    "non-prefix survival {vals:?} landed={landed}"
                );
            }
            c.commit(t).unwrap();
            c.trace_check().unwrap();
        }
    }
}

/// The interrupting crash itself tears the recovering node's WAL tail
/// (`RecoveryOptions::crash_after_tear`): the re-run must still
/// converge to the same state, whatever phase the first attempt died
/// after and however the interrupt's tear landed.
#[test]
fn interrupt_tear_rerun_is_idempotent() {
    for &phase in RecoveryPhase::ALL.iter() {
        for (landed, corrupt) in [(0, false), (u64::MAX, false), (u64::MAX, true)] {
            let (mut c, expect) = setup();
            let pending = c.pending_log_bytes(NodeId(1));
            c.crash_torn(NodeId(1), pending, true);
            let err = recovery::recover(
                &mut c,
                &RecoveryOptions::single(NodeId(1))
                    .crash_after(phase)
                    .crash_after_tear(landed, corrupt),
            )
            .unwrap_err();
            assert!(matches!(err, Error::RecoveryInterrupted(p) if p == phase));
            recovery::recover(&mut c, &RecoveryOptions::single(NodeId(1))).unwrap_or_else(|e| {
                panic!("phase={phase} landed={landed} corrupt={corrupt}: rerun: {e}")
            });
            let t = c.begin(NodeId(2)).unwrap();
            for &(p, v) in &expect {
                assert_eq!(c.read_u64(t, p, 0).unwrap(), v);
            }
            assert_eq!(c.read_u64(t, PageId::new(NodeId(0), 0), 3).unwrap(), 0);
            c.commit(t).unwrap();
            c.trace_check().unwrap();
        }
    }
}
