//! Conservation-invariant tests: bank transfers move money between
//! account slots; the total balance is invariant under any
//! interleaving, any mix of commits and aborts, deadlock-victim
//! restarts, and any crash/recovery sequence. A violated sum would
//! expose lost updates, partial transactions, double-applied redo, or
//! missed undo — failure modes that point-value oracles can miss.

use cblog_common::{CostModel, Error, NodeId, PageId, TxnId};
use cblog_core::{recovery, Cluster, ClusterConfig, RecoveryOptions};
use cblog_locks::WaitsForGraph;
use cblog_sim::workload::{generate_transfers, TransferSpec};
use std::collections::VecDeque;

const PAGES: u32 = 4;
const SLOTS: usize = 4;
const INITIAL: u64 = 1_000;

fn cluster(clients: usize) -> Cluster {
    let mut owned = vec![PAGES];
    owned.extend(std::iter::repeat(0).take(clients));
    Cluster::new(
        ClusterConfig::builder()
            .owned_pages(owned)
            .page_size(1024)
            .buffer_frames(8)
            .default_owned_pages(0)
            .cost(CostModel::unit())
            .build(),
    )
    .unwrap()
}

fn accounts() -> Vec<(PageId, usize)> {
    (0..PAGES)
        .flat_map(|p| (0..SLOTS).map(move |s| (PageId::new(NodeId(0), p), s)))
        .collect()
}

/// Seeds every account with the initial balance.
fn fund(c: &mut Cluster) {
    let t = c.begin(NodeId(0)).unwrap();
    for (pid, slot) in accounts() {
        c.write_u64(t, pid, slot, INITIAL).unwrap();
    }
    c.commit(t).unwrap();
}

/// Reads the total balance through one transaction.
fn total(c: &mut Cluster, reader: NodeId) -> u64 {
    let t = c.begin(reader).unwrap();
    let mut sum = 0;
    for (pid, slot) in accounts() {
        sum += c.read_u64(t, pid, slot).unwrap();
    }
    c.commit(t).unwrap();
    sum
}

/// Executes one transfer; returns Err(WouldBlock) style transiency to
/// the scheduler.
fn try_transfer(c: &mut Cluster, txn: TxnId, spec: &TransferSpec) -> Result<(), Error> {
    let from_bal = c.read_u64(txn, spec.from.0, spec.from.1)?;
    let to_bal = c.read_u64(txn, spec.to.0, spec.to.1)?;
    let amount = spec.amount.min(from_bal);
    c.write_u64(txn, spec.from.0, spec.from.1, from_bal - amount)?;
    c.write_u64(txn, spec.to.0, spec.to.1, to_bal + amount)?;
    Ok(())
}

/// Minimal scheduler for transfer specs with deadlock handling.
fn run_transfers(c: &mut Cluster, specs: Vec<TransferSpec>) -> (u64, u64, u64) {
    let mut queues: Vec<(NodeId, VecDeque<TransferSpec>)> = Vec::new();
    for s in specs {
        match queues.iter_mut().find(|(n, _)| *n == s.client) {
            Some((_, q)) => q.push_back(s),
            None => {
                let client = s.client;
                let mut q = VecDeque::new();
                q.push_back(s);
                queues.push((client, q));
            }
        }
    }
    let mut active: Vec<Option<(TxnId, TransferSpec)>> = (0..queues.len()).map(|_| None).collect();
    let mut wfg = WaitsForGraph::new();
    let (mut committed, mut aborted, mut victims) = (0u64, 0u64, 0u64);
    loop {
        let mut any = false;
        for ci in 0..queues.len() {
            if active[ci].is_none() {
                if let Some(spec) = queues[ci].1.pop_front() {
                    let t = c.begin(queues[ci].0).unwrap();
                    active[ci] = Some((t, spec));
                } else {
                    continue;
                }
            }
            any = true;
            let (txn, spec) = active[ci].clone().unwrap();
            match try_transfer(c, txn, &spec) {
                Ok(()) => {
                    wfg.remove(txn);
                    active[ci] = None;
                    if spec.user_abort {
                        c.abort(txn).unwrap();
                        aborted += 1;
                    } else {
                        c.commit(txn).unwrap();
                        committed += 1;
                    }
                }
                Err(Error::WouldBlock { holders, .. }) => {
                    wfg.set_waits(txn, &holders);
                    if let Some(v) = wfg.find_victim() {
                        let slot = active
                            .iter()
                            .position(|a| a.as_ref().is_some_and(|(t, _)| *t == v))
                            .expect("victim active");
                        let (vt, vs) = active[slot].take().unwrap();
                        c.abort(vt).unwrap();
                        wfg.remove(vt);
                        victims += 1;
                        let qi = queues.iter().position(|(n, _)| *n == vs.client).unwrap();
                        queues[qi].1.push_back(vs);
                    }
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        if !any {
            break;
        }
    }
    (committed, aborted, victims)
}

#[test]
fn total_balance_is_conserved_under_contention() {
    let mut c = cluster(3);
    fund(&mut c);
    let clients: Vec<NodeId> = (1..=3).map(NodeId).collect();
    let specs = generate_transfers(11, &clients, &accounts(), 60, 0.15);
    let (committed, aborted, victims) = run_transfers(&mut c, specs);
    assert_eq!(committed + aborted, 180);
    assert!(victims > 0 || committed > 0);
    let expect = INITIAL * (PAGES as u64) * (SLOTS as u64);
    assert_eq!(total(&mut c, NodeId(2)), expect, "money is conserved");
}

#[test]
fn total_balance_survives_owner_crash_and_recovery() {
    let mut c = cluster(2);
    fund(&mut c);
    let clients: Vec<NodeId> = (1..=2).map(NodeId).collect();
    let specs = generate_transfers(12, &clients, &accounts(), 40, 0.1);
    run_transfers(&mut c, specs);
    // Push the only current images into the owner's buffer, crash it,
    // recover from the clients' logs.
    for (pid, _) in accounts() {
        let _ = c.evict_page(NodeId(1), pid);
        let _ = c.evict_page(NodeId(2), pid);
    }
    c.crash(NodeId(0));
    recovery::recover(&mut c, &RecoveryOptions::single(NodeId(0))).unwrap();
    let expect = INITIAL * (PAGES as u64) * (SLOTS as u64);
    assert_eq!(total(&mut c, NodeId(1)), expect);
}

#[test]
fn total_balance_survives_repeated_mixed_crashes() {
    let mut c = cluster(2);
    fund(&mut c);
    let clients: Vec<NodeId> = (1..=2).map(NodeId).collect();
    let expect = INITIAL * (PAGES as u64) * (SLOTS as u64);
    for round in 0..3u64 {
        let specs = generate_transfers(100 + round, &clients, &accounts(), 25, 0.2);
        run_transfers(&mut c, specs);
        let victim = if round % 2 == 0 { NodeId(0) } else { NodeId(1) };
        if victim == NodeId(0) {
            for (pid, _) in accounts() {
                let _ = c.evict_page(NodeId(1), pid);
                let _ = c.evict_page(NodeId(2), pid);
            }
        }
        c.crash(victim);
        recovery::recover(&mut c, &RecoveryOptions::single(victim)).unwrap();
        assert_eq!(
            total(&mut c, NodeId(2)),
            expect,
            "conservation after round {round}"
        );
    }
}

#[test]
fn in_flight_transfers_at_crash_time_vanish_atomically() {
    let mut c = cluster(2);
    fund(&mut c);
    // A transfer that debited but has not yet credited, with its
    // records forced: the classic torn-transfer window.
    let spec = TransferSpec {
        client: NodeId(1),
        from: (PageId::new(NodeId(0), 0), 0),
        to: (PageId::new(NodeId(0), 1), 0),
        amount: 500,
        user_abort: false,
    };
    let t = c.begin(NodeId(1)).unwrap();
    let bal = c.read_u64(t, spec.from.0, spec.from.1).unwrap();
    c.write_u64(t, spec.from.0, spec.from.1, bal - spec.amount)
        .unwrap();
    // Crash before the credit, with the debit durable in the log.
    c.node_mut(NodeId(1)).force_log().unwrap();
    c.crash(NodeId(1));
    recovery::recover(&mut c, &RecoveryOptions::single(NodeId(1))).unwrap();
    let expect = INITIAL * (PAGES as u64) * (SLOTS as u64);
    assert_eq!(
        total(&mut c, NodeId(2)),
        expect,
        "half-done transfer rolled back entirely"
    );
}
