//! Self-tests of the `cblog-mc` crash-point explorer: the state-hash
//! dedup that powers branch pruning, a clean exploration of a small
//! space, and the must-fail self-test that proves the harness catches
//! a planted recovery bug and shrinks it to a minimal counterexample.

use cblog_common::{CostModel, NodeId, PageId};
use cblog_core::{Cluster, ClusterConfig};
use cblog_mc::{explore, must_fail_self_test, run_branch, shrink, Branch, Config};

/// Owner + one client, a committed write, and an in-flight two-record
/// transaction left unforced on the client.
fn scenario() -> Cluster {
    let mut c = Cluster::new(
        ClusterConfig::builder()
            .owned_pages(vec![2, 0])
            .page_size(1024)
            .buffer_frames(16)
            .default_owned_pages(0)
            .cost(CostModel::unit())
            .build(),
    )
    .unwrap();
    let p0 = PageId::new(NodeId(0), 0);
    let p1 = PageId::new(NodeId(0), 1);
    let t = c.begin(NodeId(1)).unwrap();
    c.write_u64(t, p0, 0, 100).unwrap();
    c.commit(t).unwrap();
    let t = c.begin(NodeId(1)).unwrap();
    c.write_u64(t, p1, 0, 9000).unwrap();
    c.write_u64(t, p1, 3, 9500).unwrap();
    c
}

fn hash_after_tear(landed: u64, corrupt: bool) -> u64 {
    let mut c = scenario();
    c.crash_torn(NodeId(1), landed, corrupt);
    c.repair_tails(&[NodeId(1)]).unwrap();
    c.durable_state_hash().unwrap()
}

/// Tears that land mid-record converge to the preceding record
/// boundary after repair — the equivalence class the explorer's
/// state-hash pruning keys on. Distinct boundaries stay distinct.
#[test]
fn state_hash_dedup_matches_repair_equivalence() {
    let c = scenario();
    let boundaries = c.torn_record_boundaries(NodeId(1));
    let points = c.torn_landing_points(NodeId(1));
    assert!(boundaries.len() >= 3, "two in-flight records pending");
    assert!(points.len() > boundaries.len(), "per-byte interior exists");
    let b = boundaries[boundaries.len() - 2];
    let full = *boundaries.last().unwrap();
    assert!(full > b + 2, "final record spans several bytes");
    // Mid-record positions — torn, corrupted, either offset — all
    // repair back to the boundary's durable state.
    let at_boundary = hash_after_tear(b, false);
    assert_eq!(hash_after_tear(b + 1, false), at_boundary);
    assert_eq!(hash_after_tear(b + 2, false), at_boundary);
    assert_eq!(hash_after_tear(b + 1, true), at_boundary);
    assert_eq!(hash_after_tear(full, true), at_boundary);
    // Whole-record differences are real state differences.
    assert_ne!(hash_after_tear(full, false), at_boundary);
    assert_ne!(hash_after_tear(0, false), at_boundary);
}

/// A small clean space explores with zero violations, and the
/// per-byte tear sweep actually prunes (most positions converge).
#[test]
fn small_space_explores_clean_and_prunes() {
    let cfg = Config {
        nodes: 2,
        pages: 2,
        commits: 1,
        victim_sets: vec![vec![1]],
        evict_variants: vec![false, true],
        interrupts: true,
        interrupt_tears: true,
        sched_window: 2,
        sched_actions: cblog_core::FaultAction::ALL.to_vec(),
        sabotage: false,
        max_runs: 100_000,
        max_counterexamples: 3,
    };
    let rep = explore(&cfg).unwrap();
    assert_eq!(
        rep.violations,
        0,
        "clean space must verify: {:?}",
        rep.counterexamples
            .iter()
            .map(|cx| (cx.branch.spec(), cx.error.clone()))
            .collect::<Vec<_>>()
    );
    assert!(!rep.truncated);
    assert!(rep.explored > 0);
    assert!(
        rep.pruned > rep.distinct_states,
        "per-byte tears should mostly converge: pruned={} distinct={}",
        rep.pruned,
        rep.distinct_states
    );
}

/// The must-fail self-test: a planted undo-skip must be caught and
/// shrunk to a minimal counterexample.
#[test]
fn planted_bug_is_caught_and_shrunk() {
    let summary = must_fail_self_test().unwrap();
    assert!(summary.contains("violations"), "summary: {summary}");
}

/// The shrinker strips every irrelevant decoration from a violating
/// branch — and the shrunk spec replays to the same violation.
#[test]
fn shrinker_is_minimal_on_planted_bug() {
    let cfg = Config::sabotaged();
    let rep = explore(&cfg).unwrap();
    let cx = rep.counterexamples.first().expect("planted bug found");
    let mut noisy = cx.shrunk.clone();
    noisy.interrupt = Some(cblog_common::RecoveryPhase::LockRebuild);
    noisy.interrupt_tear = true;
    noisy.schedule = vec![
        (1, cblog_core::FaultAction::Delay),
        (2, cblog_core::FaultAction::Reorder),
    ];
    assert!(run_branch(&cfg, &noisy).is_err(), "noise keeps it failing");
    let s = shrink(&cfg, &noisy);
    assert!(
        s.schedule.is_empty(),
        "schedule noise stripped: {}",
        s.spec()
    );
    assert!(
        s.interrupt.is_none(),
        "interrupt noise stripped: {}",
        s.spec()
    );
    assert!(!s.interrupt_tear);
    // Replay round-trip: the printed spec alone reproduces it.
    let replay = Branch::parse(&s.spec()).unwrap();
    assert!(run_branch(&cfg, &replay).is_err());
}
