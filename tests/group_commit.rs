//! Group-commit integration tests: durability of force-pending
//! commits across crashes, idempotent acknowledgement when unrelated
//! forces interleave with a batch, and oracle-verified workloads
//! across window settings.

use cblog_common::{CostModel, NodeId, PageId};
use cblog_core::{recovery, Cluster, ClusterConfig, GroupCommitPolicy, RecoveryOptions};
use cblog_sim::{run_workload, workload, WorkloadConfig};

fn gc_cluster(clients: usize, pages: u32, policy: GroupCommitPolicy) -> Cluster {
    let mut owned = vec![pages];
    owned.extend(std::iter::repeat(0).take(clients));
    Cluster::new(
        ClusterConfig::builder()
            .owned_pages(owned)
            .page_size(1024)
            .buffer_frames(32)
            .default_owned_pages(0)
            .cost(CostModel::unit())
            .group_commit(policy)
            .build(),
    )
    .unwrap()
}

/// A window wide enough that nothing flushes on its own during a
/// unit-cost test.
fn open_window() -> GroupCommitPolicy {
    GroupCommitPolicy::Window {
        window_us: 1_000_000,
        max_batch: 64,
    }
}

#[test]
fn crash_with_open_window_loses_exactly_the_unacked_commits() {
    let mut c = gc_cluster(2, 4, open_window());
    let p0 = PageId::new(NodeId(0), 0);
    let p1 = PageId::new(NodeId(0), 1);
    // A: synchronously committed — the wrapper forces the window shut.
    let a = c.begin(NodeId(1)).unwrap();
    c.write_u64(a, p0, 0, 10).unwrap();
    c.commit(a).unwrap();
    // B and C: updates durable (forced), commit records force-pending.
    let b = c.begin(NodeId(1)).unwrap();
    c.write_u64(b, p0, 0, 20).unwrap();
    let d = c.begin(NodeId(1)).unwrap();
    c.write_u64(d, p1, 0, 30).unwrap();
    c.node_mut(NodeId(1)).force_log().unwrap();
    c.commit_submit(b).unwrap();
    c.commit_submit(d).unwrap();
    assert!(!c.poll_committed(b).unwrap(), "B unacknowledged");
    assert!(!c.poll_committed(d).unwrap(), "C unacknowledged");
    // Crash while the window is open: the unforced Commit records are
    // lost, so exactly B and C roll back; A survives.
    c.crash(NodeId(1));
    recovery::recover(&mut c, &RecoveryOptions::single(NodeId(1))).unwrap();
    let t = c.begin(NodeId(2)).unwrap();
    assert_eq!(
        c.read_u64(t, p0, 0).unwrap(),
        10,
        "A survives, B rolled back"
    );
    assert_eq!(c.read_u64(t, p1, 0).unwrap(), 0, "C rolled back");
    c.commit(t).unwrap();
}

#[test]
fn interleaved_force_acks_pending_commits_without_a_new_force() {
    let mut c = gc_cluster(1, 4, open_window());
    let p0 = PageId::new(NodeId(0), 0);
    let b = c.begin(NodeId(1)).unwrap();
    c.write_u64(b, p0, 0, 7).unwrap();
    c.commit_submit(b).unwrap();
    assert!(!c.poll_committed(b).unwrap());
    // An unrelated force (WAL rule, checkpoint, log-space pressure)
    // makes the pending Commit record durable.
    let forces0 = c.node(NodeId(1)).log().forces();
    c.node_mut(NodeId(1)).force_log().unwrap();
    assert!(
        c.poll_committed(b).unwrap(),
        "the interleaved force acknowledges the batch"
    );
    assert_eq!(
        c.node(NodeId(1)).log().forces(),
        forces0 + 1,
        "acknowledgement is idempotent: no second force"
    );
}

#[test]
fn batch_acknowledges_in_submission_order_with_one_force() {
    let mut c = gc_cluster(
        1,
        4,
        GroupCommitPolicy::Window {
            window_us: 1_000_000,
            max_batch: 3,
        },
    );
    let pages: Vec<PageId> = (0..3).map(|i| PageId::new(NodeId(0), i)).collect();
    let txns: Vec<_> = pages
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let t = c.begin(NodeId(1)).unwrap();
            c.write_u64(t, *p, 0, i as u64 + 1).unwrap();
            t
        })
        .collect();
    let forces0 = c.node(NodeId(1)).log().forces();
    c.commit_submit(txns[0]).unwrap();
    c.commit_submit(txns[1]).unwrap();
    assert!(!c.poll_committed(txns[0]).unwrap());
    // The third submission fills the batch and flushes inline.
    c.commit_submit(txns[2]).unwrap();
    for &t in &txns {
        assert!(c.poll_committed(t).unwrap(), "whole group acknowledged");
    }
    assert_eq!(
        c.node(NodeId(1)).log().forces(),
        forces0 + 1,
        "one force covers the batch"
    );
    let groups = c
        .node(NodeId(1))
        .registry()
        .histogram("wal/group_size")
        .snapshot();
    assert_eq!(groups.max, 3, "group size metric sees the full batch");
    assert!(
        c.flight_dump().contains("group-commit"),
        "flight recorder logs the batched force"
    );
}

#[test]
fn oracle_verified_workloads_across_window_settings() {
    let policies = [
        GroupCommitPolicy::Immediate,
        GroupCommitPolicy::Window {
            window_us: 200,
            max_batch: 2,
        },
        GroupCommitPolicy::Window {
            window_us: 5_000,
            max_batch: 4,
        },
        GroupCommitPolicy::Window {
            window_us: 1_000_000,
            max_batch: 8,
        },
    ];
    let mut forces_immediate = 0u64;
    for (i, policy) in policies.iter().enumerate() {
        let mut c = gc_cluster(2, 8, *policy);
        let cfg = WorkloadConfig {
            txns_per_client: 30,
            ops_per_txn: 5,
            write_ratio: 0.6,
            hot_access: 0.3,
            seed: 42,
            ..WorkloadConfig::default()
        };
        let pages: Vec<PageId> = (0..8).map(|i| PageId::new(NodeId(0), i)).collect();
        let specs = workload::generate(&cfg, &[NodeId(1), NodeId(2)], &pages, None);
        let stats = run_workload(&mut c, specs).unwrap();
        assert_eq!(stats.committed, 60, "policy {policy:?} commits everything");
        stats.oracle.verify(&mut c, NodeId(1)).unwrap();
        let forces: u64 = (1..=2).map(|n| c.node(NodeId(n)).log().forces()).sum();
        if i == 0 {
            forces_immediate = forces;
        } else {
            assert!(
                forces <= forces_immediate,
                "windowed policy {policy:?} never forces more than immediate: \
                 {forces} vs {forces_immediate}"
            );
        }
    }
}
