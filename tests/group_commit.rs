//! Group-commit integration tests: durability of force-pending
//! commits across crashes, idempotent acknowledgement when unrelated
//! forces interleave with a batch, and oracle-verified workloads
//! across window settings.

use cblog_common::metrics::keys;
use cblog_common::{CostModel, NodeId, PageId};
use cblog_core::{recovery, Cluster, ClusterConfig, GroupCommitPolicy, RecoveryOptions};
use cblog_sim::{run_workload, workload, WorkloadConfig};

fn gc_cluster(clients: usize, pages: u32, policy: GroupCommitPolicy) -> Cluster {
    let mut owned = vec![pages];
    owned.extend(std::iter::repeat(0).take(clients));
    Cluster::new(
        ClusterConfig::builder()
            .owned_pages(owned)
            .page_size(1024)
            .buffer_frames(32)
            .default_owned_pages(0)
            .cost(CostModel::unit())
            .group_commit(policy)
            .build(),
    )
    .unwrap()
}

/// A window wide enough that nothing flushes on its own during a
/// unit-cost test.
fn open_window() -> GroupCommitPolicy {
    GroupCommitPolicy::Window {
        window_us: 1_000_000,
        max_batch: 64,
    }
}

#[test]
fn crash_with_open_window_loses_exactly_the_unacked_commits() {
    let mut c = gc_cluster(2, 4, open_window());
    let p0 = PageId::new(NodeId(0), 0);
    let p1 = PageId::new(NodeId(0), 1);
    // A: synchronously committed — the wrapper forces the window shut.
    let a = c.begin(NodeId(1)).unwrap();
    c.write_u64(a, p0, 0, 10).unwrap();
    c.commit(a).unwrap();
    // B and C: updates durable (forced), commit records force-pending.
    let b = c.begin(NodeId(1)).unwrap();
    c.write_u64(b, p0, 0, 20).unwrap();
    let d = c.begin(NodeId(1)).unwrap();
    c.write_u64(d, p1, 0, 30).unwrap();
    c.node_mut(NodeId(1)).force_log().unwrap();
    c.commit_submit(b).unwrap();
    c.commit_submit(d).unwrap();
    assert!(!c.poll_committed(b).unwrap(), "B unacknowledged");
    assert!(!c.poll_committed(d).unwrap(), "C unacknowledged");
    // Crash while the window is open: the unforced Commit records are
    // lost, so exactly B and C roll back; A survives.
    c.crash(NodeId(1));
    recovery::recover(&mut c, &RecoveryOptions::single(NodeId(1))).unwrap();
    let t = c.begin(NodeId(2)).unwrap();
    assert_eq!(
        c.read_u64(t, p0, 0).unwrap(),
        10,
        "A survives, B rolled back"
    );
    assert_eq!(c.read_u64(t, p1, 0).unwrap(), 0, "C rolled back");
    c.commit(t).unwrap();
}

#[test]
fn interleaved_force_acks_pending_commits_without_a_new_force() {
    let mut c = gc_cluster(1, 4, open_window());
    let p0 = PageId::new(NodeId(0), 0);
    let b = c.begin(NodeId(1)).unwrap();
    c.write_u64(b, p0, 0, 7).unwrap();
    c.commit_submit(b).unwrap();
    assert!(!c.poll_committed(b).unwrap());
    // An unrelated force (WAL rule, checkpoint, log-space pressure)
    // makes the pending Commit record durable.
    let forces0 = c.node(NodeId(1)).log().forces();
    c.node_mut(NodeId(1)).force_log().unwrap();
    assert!(
        c.poll_committed(b).unwrap(),
        "the interleaved force acknowledges the batch"
    );
    assert_eq!(
        c.node(NodeId(1)).log().forces(),
        forces0 + 1,
        "acknowledgement is idempotent: no second force"
    );
}

#[test]
fn batch_acknowledges_in_submission_order_with_one_force() {
    let mut c = gc_cluster(
        1,
        4,
        GroupCommitPolicy::Window {
            window_us: 1_000_000,
            max_batch: 3,
        },
    );
    let pages: Vec<PageId> = (0..3).map(|i| PageId::new(NodeId(0), i)).collect();
    let txns: Vec<_> = pages
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let t = c.begin(NodeId(1)).unwrap();
            c.write_u64(t, *p, 0, i as u64 + 1).unwrap();
            t
        })
        .collect();
    let forces0 = c.node(NodeId(1)).log().forces();
    c.commit_submit(txns[0]).unwrap();
    c.commit_submit(txns[1]).unwrap();
    assert!(!c.poll_committed(txns[0]).unwrap());
    // The third submission fills the batch and flushes inline.
    c.commit_submit(txns[2]).unwrap();
    for &t in &txns {
        assert!(c.poll_committed(t).unwrap(), "whole group acknowledged");
    }
    assert_eq!(
        c.node(NodeId(1)).log().forces(),
        forces0 + 1,
        "one force covers the batch"
    );
    let groups = c
        .node(NodeId(1))
        .registry()
        .histogram("wal/group_size")
        .snapshot();
    assert_eq!(groups.max, 3, "group size metric sees the full batch");
    assert!(
        c.flight_dump().contains("group-commit"),
        "flight recorder logs the batched force"
    );
}

#[test]
fn one_pump_flushes_every_scheduler_the_clock_ran_past() {
    // Regression test for the pump sweep: flushing the node with the
    // earliest deadline spends disk time, which can push the clock
    // past another node's deadline. A single pump_commits() must keep
    // re-evaluating all schedulers until none is due — the old single
    // pass skipped node 1 here because it was examined (not yet due)
    // before node 2's flush advanced the clock.
    let mut c = Cluster::new(
        ClusterConfig::builder()
            .owned_pages(vec![8, 0, 0, 0])
            .page_size(1024)
            .buffer_frames(32)
            .default_owned_pages(0)
            .cost(CostModel {
                msg_fixed_us: 500,
                wire_us_per_kib: 0,
                io_fixed_us: 10_000,
                disk_us_per_kib: 0,
                handle_us: 0,
            })
            .group_commit(GroupCommitPolicy::Adaptive {
                min_window_us: 1_000,
                max_window_us: 100_000,
                target_batch: 16,
            })
            .build(),
    )
    .unwrap();
    let p1 = PageId::new(NodeId(0), 1);
    let p2 = PageId::new(NodeId(0), 2);
    let p_delta = PageId::new(NodeId(0), 3);
    // Warm caches/locks and feed each node's rate estimator a first
    // inter-arrival sample.
    let a = c.begin(NodeId(1)).unwrap();
    c.write_u64(a, p1, 0, 1).unwrap();
    c.commit(a).unwrap();
    let b = c.begin(NodeId(2)).unwrap();
    c.write_u64(b, p2, 0, 1).unwrap();
    c.commit(b).unwrap();
    // Cache p_delta (shared) at nodes 1 and 3 so node 3's later lock
    // upgrade on it costs only messages — a sub-force clock advance.
    let warm = c.begin(NodeId(1)).unwrap();
    c.read_u64(warm, p_delta, 0).unwrap();
    c.abort(warm).unwrap();
    let warm3 = c.begin(NodeId(3)).unwrap();
    c.read_u64(warm3, p_delta, 0).unwrap();
    c.abort(warm3).unwrap();
    // Node 2 submits first: its adaptive deadline is the earliest.
    let t2 = c.begin(NodeId(2)).unwrap();
    c.write_u64(t2, p2, 0, 22).unwrap();
    c.commit_submit(t2).unwrap();
    // A message-only operation (X upgrade on a cached page, with a
    // callback to node 1's shared copy) staggers the clock by less
    // than one disk force, so node 1's deadline lands inside node 2's
    // flush.
    let d = c.begin(NodeId(3)).unwrap();
    c.write_u64(d, p_delta, 0, 9).unwrap();
    c.abort(d).unwrap();
    let t1 = c.begin(NodeId(1)).unwrap();
    c.write_u64(t1, p1, 0, 11).unwrap();
    c.commit_submit(t1).unwrap();
    // Precondition: both estimators trained onto the same clamped
    // window, so the deadlines differ by exactly the submit stagger.
    for n in [1u32, 2] {
        assert_eq!(
            c.node(NodeId(n))
                .registry()
                .gauge(keys::WAL_WINDOW_US)
                .get(),
            100_000,
            "node {n} window clamps to the cap"
        );
    }
    assert!(!c.poll_committed(t1).unwrap());
    assert!(!c.poll_committed(t2).unwrap());
    let f1 = c.node(NodeId(1)).log().forces();
    let f2 = c.node(NodeId(2)).log().forces();
    assert!(c.pump_commits().unwrap(), "pump makes progress");
    assert!(
        c.poll_committed(t2).unwrap(),
        "earliest deadline flushed by the pump"
    );
    assert!(
        c.poll_committed(t1).unwrap(),
        "the same pump re-evaluates node 1 after node 2's flush \
         advanced the clock past its deadline"
    );
    assert_eq!(c.node(NodeId(1)).log().forces(), f1 + 1);
    assert_eq!(c.node(NodeId(2)).log().forces(), f2 + 1);
}

#[test]
fn adaptive_oracle_verified_workload_across_crash_and_recovery() {
    let policy = GroupCommitPolicy::Adaptive {
        min_window_us: 100,
        max_window_us: 20_000,
        target_batch: 4,
    };
    let mut c = gc_cluster(2, 8, policy);
    let pages: Vec<PageId> = (0..8).map(|i| PageId::new(NodeId(0), i)).collect();
    // Phase 1: a mixed workload commits entirely through the adaptive
    // pipeline and every acknowledged value is readable.
    let cfg = WorkloadConfig {
        txns_per_client: 30,
        ops_per_txn: 5,
        write_ratio: 0.6,
        hot_access: 0.3,
        seed: 7,
        ..WorkloadConfig::default()
    };
    let specs = workload::generate(&cfg, &[NodeId(1), NodeId(2)], &pages, None);
    let stats = run_workload(&mut c, specs).unwrap();
    assert_eq!(stats.committed, 60, "adaptive pipeline commits everything");
    stats.oracle.verify(&mut c, NodeId(1)).unwrap();
    // Crash with an open adaptive window: A is acknowledged before the
    // crash, B's commit record is parked behind a deadline that never
    // arrives. Durability is only ever acknowledged by the covering
    // force, so B must roll back and A must survive.
    let p0 = pages[0];
    let a = c.begin(NodeId(1)).unwrap();
    c.write_u64(a, p0, 0, 10).unwrap();
    c.commit(a).unwrap();
    let b = c.begin(NodeId(1)).unwrap();
    c.write_u64(b, p0, 0, 20).unwrap();
    c.node_mut(NodeId(1)).force_log().unwrap();
    c.commit_submit(b).unwrap();
    assert!(
        !c.poll_committed(b).unwrap(),
        "no ack before the covering force"
    );
    c.crash(NodeId(1));
    recovery::recover(&mut c, &RecoveryOptions::single(NodeId(1))).unwrap();
    let t = c.begin(NodeId(2)).unwrap();
    assert_eq!(
        c.read_u64(t, p0, 0).unwrap(),
        10,
        "A survives, B rolls back"
    );
    c.commit(t).unwrap();
    // Phase 2: the recovered node keeps committing under the same
    // adaptive scheduler, and the oracle still verifies end to end.
    let cfg2 = WorkloadConfig {
        txns_per_client: 20,
        ops_per_txn: 4,
        write_ratio: 0.6,
        hot_access: 0.3,
        seed: 43,
        ..WorkloadConfig::default()
    };
    let specs2 = workload::generate(&cfg2, &[NodeId(1), NodeId(2)], &pages, None);
    let stats2 = run_workload(&mut c, specs2).unwrap();
    assert_eq!(stats2.committed, 40, "recovered node commits again");
    stats2.oracle.verify(&mut c, NodeId(1)).unwrap();
}

#[test]
fn oracle_verified_workloads_across_window_settings() {
    let policies = [
        GroupCommitPolicy::Immediate,
        GroupCommitPolicy::Window {
            window_us: 200,
            max_batch: 2,
        },
        GroupCommitPolicy::Window {
            window_us: 5_000,
            max_batch: 4,
        },
        GroupCommitPolicy::Window {
            window_us: 1_000_000,
            max_batch: 8,
        },
    ];
    let mut forces_immediate = 0u64;
    for (i, policy) in policies.iter().enumerate() {
        let mut c = gc_cluster(2, 8, *policy);
        let cfg = WorkloadConfig {
            txns_per_client: 30,
            ops_per_txn: 5,
            write_ratio: 0.6,
            hot_access: 0.3,
            seed: 42,
            ..WorkloadConfig::default()
        };
        let pages: Vec<PageId> = (0..8).map(|i| PageId::new(NodeId(0), i)).collect();
        let specs = workload::generate(&cfg, &[NodeId(1), NodeId(2)], &pages, None);
        let stats = run_workload(&mut c, specs).unwrap();
        assert_eq!(stats.committed, 60, "policy {policy:?} commits everything");
        stats.oracle.verify(&mut c, NodeId(1)).unwrap();
        let forces: u64 = (1..=2).map(|n| c.node(NodeId(n)).log().forces()).sum();
        if i == 0 {
            forces_immediate = forces;
        } else {
            assert!(
                forces <= forces_immediate,
                "windowed policy {policy:?} never forces more than immediate: \
                 {forces} vs {forces_immediate}"
            );
        }
    }
}
