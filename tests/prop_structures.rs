//! Property-based tests of the substrate data structures against
//! simple reference models: slotted pages, log record codec, space
//! map PSN floors, buffer pool membership, DPT bookkeeping, and the
//! PSN redo filter.

use cblog_common::{Lsn, NodeId, PageId, Psn, TxnId};
use cblog_storage::{BufferPool, Page, PageKind, SlottedPage, SpaceMap};
use cblog_wal::{DirtyPageTable, LogPayload, LogRecord, PageOp};
use proptest::prelude::*;
use std::collections::HashMap;

fn pid(i: u32) -> PageId {
    PageId::new(NodeId(1), i)
}

// ---------------------------------------------------------------------
// Slotted page vs a HashMap model
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum SlotOp {
    Insert(Vec<u8>),
    Delete(usize),
    Update(usize, Vec<u8>),
    Compact,
}

fn slot_op() -> impl Strategy<Value = SlotOp> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 1..24).prop_map(SlotOp::Insert),
        (0usize..32).prop_map(SlotOp::Delete),
        ((0usize..32), prop::collection::vec(any::<u8>(), 1..24))
            .prop_map(|(s, d)| SlotOp::Update(s, d)),
        Just(SlotOp::Compact),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn slotted_page_matches_model(ops in prop::collection::vec(slot_op(), 1..60)) {
        let mut page = Page::new(pid(0), PageKind::Slotted, Psn(0), 1024);
        let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
        let mut sp = SlottedPage::new(&mut page);
        for op in ops {
            match op {
                SlotOp::Insert(data) => {
                    if let Ok(slot) = sp.insert(&data) {
                        model.insert(slot, data);
                    }
                }
                SlotOp::Delete(i) => {
                    let live: Vec<u16> = model.keys().copied().collect();
                    if !live.is_empty() {
                        let slot = live[i % live.len()];
                        let old = sp.delete(slot).unwrap();
                        prop_assert_eq!(&old, model.get(&slot).unwrap());
                        model.remove(&slot);
                    }
                }
                SlotOp::Update(i, data) => {
                    let live: Vec<u16> = model.keys().copied().collect();
                    if !live.is_empty() {
                        let slot = live[i % live.len()];
                        if sp.update(slot, &data).is_ok() {
                            model.insert(slot, data);
                        }
                    }
                }
                SlotOp::Compact => sp.compact(),
            }
            // Full consistency check after every step.
            prop_assert_eq!(sp.live_count() as usize, model.len());
            for (slot, data) in &model {
                prop_assert_eq!(sp.get(*slot).unwrap(), &data[..]);
            }
        }
    }

    // -----------------------------------------------------------------
    // Log record codec
    // -----------------------------------------------------------------

    #[test]
    fn log_records_roundtrip(
        seq in 1u64..1000,
        prev in 0u64..100000,
        off in 0u32..64,
        before in prop::collection::vec(any::<u8>(), 0..32),
        after in prop::collection::vec(any::<u8>(), 0..32),
        psn in 0u64..1_000_000,
    ) {
        let rec = LogRecord {
            txn: TxnId::new(NodeId(3), seq),
            prev_lsn: Lsn(prev),
            payload: LogPayload::Update {
                pid: pid(off),
                psn_before: Psn(psn),
                op: PageOp::WriteRange { off, before, after },
            },
        };
        let bytes = rec.encode();
        let (back, used) = LogRecord::decode(&bytes).unwrap();
        prop_assert_eq!(back, rec);
        prop_assert_eq!(used, bytes.len());
    }

    #[test]
    fn corrupted_log_records_never_decode_silently(
        seq in 1u64..1000,
        flip in 8usize..64,
    ) {
        let rec = LogRecord {
            txn: TxnId::new(NodeId(3), seq),
            prev_lsn: Lsn(9),
            payload: LogPayload::Update {
                pid: pid(1),
                psn_before: Psn(5),
                op: PageOp::WriteRange {
                    off: 0,
                    before: vec![1; 16],
                    after: vec![2; 16],
                },
            },
        };
        let mut bytes = rec.encode();
        let i = flip % bytes.len();
        if i >= 8 {
            // Flip a body byte (header flips may alter the length field;
            // those are caught by the length/crc checks too but can read
            // past the buffer differently).
            bytes[i] ^= 0xFF;
            let r = LogRecord::decode(&bytes);
            prop_assert!(r.is_err(), "bit flip at {i} must not decode");
        }
    }

    // -----------------------------------------------------------------
    // Space map: PSN floors never regress across alloc/free cycles
    // -----------------------------------------------------------------

    #[test]
    fn spacemap_psn_floor_is_monotone(finals in prop::collection::vec(1u64..500, 1..12)) {
        let mut m = SpaceMap::new(1);
        let mut last_initial = Psn(0);
        for fin in finals {
            let (idx, initial) = m.allocate(1).unwrap();
            prop_assert!(initial > last_initial,
                "initial {initial:?} must exceed previous {last_initial:?}");
            last_initial = initial;
            // The page may or may not reach `fin`; deallocate with the
            // max of initial and fin to stay realistic.
            let final_psn = Psn(initial.0.max(fin));
            m.deallocate(idx, final_psn).unwrap();
            last_initial = Psn(last_initial.0.max(final_psn.0));
        }
    }

    // -----------------------------------------------------------------
    // Buffer pool membership model
    // -----------------------------------------------------------------

    #[test]
    fn buffer_pool_matches_membership_model(
        accesses in prop::collection::vec((0u32..32, any::<bool>()), 1..150),
        cap in 2usize..16,
    ) {
        let mut bp = BufferPool::new(cap);
        let mut resident: Vec<PageId> = Vec::new();
        for (i, dirty) in accesses {
            let p = pid(i);
            let ev = bp.insert(
                Page::new(p, PageKind::Raw, Psn(1), 256),
                dirty,
            ).unwrap();
            if !resident.contains(&p) {
                resident.push(p);
            }
            if let Some(ev) = ev {
                let evicted = ev.page.id();
                prop_assert_ne!(evicted, p, "fresh insert never evicts itself");
                resident.retain(|x| *x != evicted);
            }
            prop_assert!(bp.len() <= cap);
            prop_assert_eq!(bp.len(), resident.len());
            for r in &resident {
                prop_assert!(bp.contains(*r));
            }
        }
    }

    // -----------------------------------------------------------------
    // DPT: RedoLSN only moves forward; entries drop only via the
    // flush-ack rule
    // -----------------------------------------------------------------

    #[test]
    fn dpt_redo_lsn_is_monotone_per_entry(
        events in prop::collection::vec((0u32..4, 0u8..4), 1..80),
    ) {
        let mut dpt = DirtyPageTable::new();
        let mut lsn = 100u64;
        let mut psn: HashMap<PageId, u64> = HashMap::new();
        let mut last_redo: HashMap<PageId, u64> = HashMap::new();
        for (page, ev) in events {
            let p = pid(page);
            lsn += 10;
            let cur = psn.entry(p).or_insert(1);
            match ev {
                0 => { dpt.ensure(p, Psn(*cur), Lsn(lsn)); }
                1 => { *cur += 1; dpt.on_update(p, Psn(*cur), Lsn(lsn)); }
                2 => { dpt.on_replace(p, Lsn(lsn)); }
                _ => { dpt.on_flush_ack(p); }
            }
            if let Some(e) = dpt.get(p) {
                if let Some(prev) = last_redo.get(&p) {
                    prop_assert!(e.redo_lsn.0 >= *prev,
                        "RedoLSN regressed on {p}: {} < {prev}", e.redo_lsn.0);
                }
                last_redo.insert(p, e.redo_lsn.0);
            } else {
                last_redo.remove(&p);
            }
        }
    }

    // -----------------------------------------------------------------
    // PSN redo filter: replay in PSN order is exactly-once from any
    // prefix state
    // -----------------------------------------------------------------

    #[test]
    fn psn_filtered_replay_is_exactly_once(
        n_updates in 1usize..40,
        start_at in 0usize..40,
        double_apply in any::<bool>(),
    ) {
        // Build a history of n updates to one page.
        let mut ops = Vec::new();
        for i in 0..n_updates as u64 {
            ops.push((Psn(1 + i), PageOp::WriteRange {
                off: ((i % 16) * 8) as u32,
                before: i.to_le_bytes().to_vec(),
                after: (i + 1).to_le_bytes().to_vec(),
            }));
        }
        // Final reference state: apply all in order.
        let mut reference = Page::new(pid(0), PageKind::Raw, Psn(1), 256);
        for (psn, op) in &ops {
            assert_eq!(reference.psn(), *psn);
            op.apply_redo(&mut reference).unwrap();
            reference.set_psn(psn.next());
        }
        // Start from an arbitrary prefix (disk state after some flush).
        let cut = start_at.min(n_updates);
        let mut page = Page::new(pid(0), PageKind::Raw, Psn(1), 256);
        for (psn, op) in &ops[..cut] {
            op.apply_redo(&mut page).unwrap();
            page.set_psn(psn.next());
        }
        // Replay the whole history with the PSN filter, possibly twice.
        let rounds = if double_apply { 2 } else { 1 };
        for _ in 0..rounds {
            for (psn, op) in &ops {
                if page.psn() == *psn {
                    op.apply_redo(&mut page).unwrap();
                    page.set_psn(psn.next());
                }
            }
        }
        prop_assert_eq!(page.psn(), reference.psn());
        prop_assert_eq!(page.body(), reference.body());
    }
}
