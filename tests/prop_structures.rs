//! Randomized model tests of the substrate data structures against
//! simple reference models: slotted pages, log record codec, space
//! map PSN floors, buffer pool membership, DPT bookkeeping, and the
//! PSN redo filter.
//!
//! Cases are generated with the workspace's deterministic `Rng` (no
//! crates.io access, so no proptest); each failure names its case.

use cblog_common::{Lsn, NodeId, PageId, Psn, Rng, TxnId};
use cblog_storage::{BufferPool, Page, PageKind, SlottedPage, SpaceMap};
use cblog_wal::{DirtyPageTable, LogPayload, LogRecord, PageOp};
use std::collections::HashMap;

fn pid(i: u32) -> PageId {
    PageId::new(NodeId(1), i)
}

fn bytes(rng: &mut Rng, range: std::ops::Range<usize>) -> Vec<u8> {
    let n = rng.gen_range_usize(range);
    (0..n).map(|_| rng.gen_range(0..256) as u8).collect()
}

// ---------------------------------------------------------------------
// Slotted page vs a HashMap model
// ---------------------------------------------------------------------

#[test]
fn slotted_page_matches_model() {
    for case in 0u64..64 {
        let mut rng = Rng::seed_from_u64(0x51A7 + case);
        let n_ops = rng.gen_range_usize(1..60);
        let mut page = Page::new(pid(0), PageKind::Slotted, Psn(0), 1024);
        let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
        let mut sp = SlottedPage::new(&mut page);
        for _ in 0..n_ops {
            match rng.gen_range(0..4) {
                0 => {
                    let data = bytes(&mut rng, 1..24);
                    if let Ok(slot) = sp.insert(&data) {
                        model.insert(slot, data);
                    }
                }
                1 => {
                    let live: Vec<u16> = model.keys().copied().collect();
                    if !live.is_empty() {
                        let slot = live[rng.gen_range_usize(0..32) % live.len()];
                        let old = sp.delete(slot).unwrap();
                        assert_eq!(&old, model.get(&slot).unwrap(), "case {case}");
                        model.remove(&slot);
                    }
                }
                2 => {
                    let live: Vec<u16> = model.keys().copied().collect();
                    if !live.is_empty() {
                        let slot = live[rng.gen_range_usize(0..32) % live.len()];
                        let data = bytes(&mut rng, 1..24);
                        if sp.update(slot, &data).is_ok() {
                            model.insert(slot, data);
                        }
                    }
                }
                _ => sp.compact(),
            }
            // Full consistency check after every step.
            assert_eq!(sp.live_count() as usize, model.len(), "case {case}");
            for (slot, data) in &model {
                assert_eq!(sp.get(*slot).unwrap(), &data[..], "case {case}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Log record codec
// ---------------------------------------------------------------------

#[test]
fn log_records_roundtrip() {
    for case in 0u64..128 {
        let mut rng = Rng::seed_from_u64(0xC0DEC + case);
        let rec = LogRecord {
            txn: TxnId::new(NodeId(3), rng.gen_range(1..1000)),
            prev_lsn: Lsn(rng.gen_range(0..100000)),
            payload: LogPayload::Update {
                pid: pid(rng.gen_range(0..64) as u32),
                psn_before: Psn(rng.gen_range(0..1_000_000)),
                op: PageOp::WriteRange {
                    off: rng.gen_range(0..64) as u32,
                    before: bytes(&mut rng, 0..32),
                    after: bytes(&mut rng, 0..32),
                },
            },
        };
        let encoded = rec.encode();
        let (back, used) = LogRecord::decode(&encoded).unwrap();
        assert_eq!(back, rec, "case {case}");
        assert_eq!(used, encoded.len(), "case {case}");
    }
}

#[test]
fn corrupted_log_records_never_decode_silently() {
    for case in 0u64..64 {
        let mut rng = Rng::seed_from_u64(0xBADC0DE + case);
        let rec = LogRecord {
            txn: TxnId::new(NodeId(3), rng.gen_range(1..1000)),
            prev_lsn: Lsn(9),
            payload: LogPayload::Update {
                pid: pid(1),
                psn_before: Psn(5),
                op: PageOp::WriteRange {
                    off: 0,
                    before: vec![1; 16],
                    after: vec![2; 16],
                },
            },
        };
        let mut encoded = rec.encode();
        // Flip a body byte (header flips may alter the length field;
        // those are caught by the length/crc checks too but can read
        // past the buffer differently).
        let i = rng.gen_range_usize(8..encoded.len());
        encoded[i] ^= 0xFF;
        let r = LogRecord::decode(&encoded);
        assert!(r.is_err(), "case {case}: bit flip at {i} must not decode");
    }
}

// ---------------------------------------------------------------------
// Space map: PSN floors never regress across alloc/free cycles
// ---------------------------------------------------------------------

#[test]
fn spacemap_psn_floor_is_monotone() {
    for case in 0u64..32 {
        let mut rng = Rng::seed_from_u64(0x5ACE + case);
        let n = rng.gen_range_usize(1..12);
        let mut m = SpaceMap::new(1);
        let mut last_initial = Psn(0);
        for _ in 0..n {
            let fin = rng.gen_range(1..500);
            let (idx, initial) = m.allocate(1).unwrap();
            assert!(
                initial > last_initial,
                "case {case}: initial {initial:?} must exceed previous {last_initial:?}"
            );
            last_initial = initial;
            // The page may or may not reach `fin`; deallocate with the
            // max of initial and fin to stay realistic.
            let final_psn = Psn(initial.0.max(fin));
            m.deallocate(idx, final_psn).unwrap();
            last_initial = Psn(last_initial.0.max(final_psn.0));
        }
    }
}

// ---------------------------------------------------------------------
// Buffer pool membership model
// ---------------------------------------------------------------------

#[test]
fn buffer_pool_matches_membership_model() {
    for case in 0u64..48 {
        let mut rng = Rng::seed_from_u64(0xB00F + case);
        let cap = rng.gen_range_usize(2..16);
        let n = rng.gen_range_usize(1..150);
        let mut bp = BufferPool::new(cap);
        let mut resident: Vec<PageId> = Vec::new();
        for _ in 0..n {
            let p = pid(rng.gen_range(0..32) as u32);
            let dirty = rng.gen_bool(0.5);
            let ev = bp
                .insert(Page::new(p, PageKind::Raw, Psn(1), 256), dirty)
                .unwrap();
            if !resident.contains(&p) {
                resident.push(p);
            }
            if let Some(ev) = ev {
                let evicted = ev.page.id();
                assert_ne!(evicted, p, "case {case}: fresh insert never evicts itself");
                resident.retain(|x| *x != evicted);
            }
            assert!(bp.len() <= cap, "case {case}");
            assert_eq!(bp.len(), resident.len(), "case {case}");
            for r in &resident {
                assert!(bp.contains(*r), "case {case}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// DPT: RedoLSN only moves forward; entries drop only via the
// flush-ack rule
// ---------------------------------------------------------------------

#[test]
fn dpt_redo_lsn_is_monotone_per_entry() {
    for case in 0u64..48 {
        let mut rng = Rng::seed_from_u64(0xD97 + case);
        let n = rng.gen_range_usize(1..80);
        let mut dpt = DirtyPageTable::new();
        let mut lsn = 100u64;
        let mut psn: HashMap<PageId, u64> = HashMap::new();
        let mut last_redo: HashMap<PageId, u64> = HashMap::new();
        for _ in 0..n {
            let p = pid(rng.gen_range(0..4) as u32);
            let ev = rng.gen_range(0..4) as u8;
            lsn += 10;
            let cur = psn.entry(p).or_insert(1);
            match ev {
                0 => {
                    dpt.ensure(p, Psn(*cur), Lsn(lsn));
                }
                1 => {
                    *cur += 1;
                    dpt.on_update(p, Psn(*cur), Lsn(lsn));
                }
                2 => {
                    dpt.on_replace(p, Lsn(lsn));
                }
                _ => {
                    dpt.on_flush_ack(p);
                }
            }
            if let Some(e) = dpt.get(p) {
                if let Some(prev) = last_redo.get(&p) {
                    assert!(
                        e.redo_lsn.0 >= *prev,
                        "case {case}: RedoLSN regressed on {p}: {} < {prev}",
                        e.redo_lsn.0
                    );
                }
                last_redo.insert(p, e.redo_lsn.0);
            } else {
                last_redo.remove(&p);
            }
        }
    }
}

// ---------------------------------------------------------------------
// PSN redo filter: replay in PSN order is exactly-once from any
// prefix state
// ---------------------------------------------------------------------

#[test]
fn psn_filtered_replay_is_exactly_once() {
    for case in 0u64..64 {
        let mut rng = Rng::seed_from_u64(0xF117E6 + case);
        let n_updates = rng.gen_range_usize(1..40);
        let start_at = rng.gen_range_usize(0..40);
        let double_apply = rng.gen_bool(0.5);
        // Build a history of n updates to one page.
        let mut ops = Vec::new();
        for i in 0..n_updates as u64 {
            ops.push((
                Psn(1 + i),
                PageOp::WriteRange {
                    off: ((i % 16) * 8) as u32,
                    before: i.to_le_bytes().to_vec(),
                    after: (i + 1).to_le_bytes().to_vec(),
                },
            ));
        }
        // Final reference state: apply all in order.
        let mut reference = Page::new(pid(0), PageKind::Raw, Psn(1), 256);
        for (psn, op) in &ops {
            assert_eq!(reference.psn(), *psn, "case {case}");
            op.apply_redo(&mut reference).unwrap();
            reference.set_psn(psn.next());
        }
        // Start from an arbitrary prefix (disk state after some flush).
        let cut = start_at.min(n_updates);
        let mut page = Page::new(pid(0), PageKind::Raw, Psn(1), 256);
        for (psn, op) in &ops[..cut] {
            op.apply_redo(&mut page).unwrap();
            page.set_psn(psn.next());
        }
        // Replay the whole history with the PSN filter, possibly twice.
        let rounds = if double_apply { 2 } else { 1 };
        for _ in 0..rounds {
            for (psn, op) in &ops {
                if page.psn() == *psn {
                    op.apply_redo(&mut page).unwrap();
                    page.set_psn(psn.next());
                }
            }
        }
        assert_eq!(page.psn(), reference.psn(), "case {case}");
        assert_eq!(page.body(), reference.body(), "case {case}");
    }
}
